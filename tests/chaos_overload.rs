//! Chaos tests: demand faults. A hot tenant floods the service, queues run
//! into their configured bounds, tasks carry deadlines they cannot meet —
//! and the overload machinery (admission control, typed backpressure,
//! brownout shedding, TTL expiry) must degrade the service *gracefully*.
//!
//! The acceptance bar mirrors `chaos_recovery.rs`: every submission either
//! completes exactly once or fails with a *typed, actionable* error
//! (`Overloaded { retry_after_ms }`, `QueueFull`, `DeadlineExceeded`) — no
//! hangs, no silent drops, no untyped failures, and an innocent quiet
//! tenant is never starved by someone else's flood.
//!
//! Environment knobs (the CI matrix):
//! - `GCX_CHAOS_SEED` — decimal or `0x`-hex seed for the workload shape;
//! - `GCX_CHAOS_ENGINE` — `GlobusComputeEngine` (default) or `ThreadEngine`;
//! - `GCX_CHAOS_ADMISSION` — `on` (default) or `off`: the soak runs in both
//!   modes; with admission off the typed-rejection assertions relax to
//!   "everything completes" (nothing is ever shed).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcx::auth::{AuthPolicy, AuthService};
use gcx::cloud::{AdmissionConfig, CloudConfig, WebService};
use gcx::config::AdmissionSpec;
use gcx::core::clock::{SharedClock, SystemClock, VirtualClock};
use gcx::core::error::GcxError;
use gcx::core::metrics::MetricsRegistry;
use gcx::core::retry::RetryPolicy;
use gcx::core::task::{TaskSpec, TaskState};
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::mq::{Broker, LinkProfile};
use gcx::sdk::{Client, Executor, ExecutorConfig, PyFunction};

fn chaos_seed() -> u64 {
    std::env::var("GCX_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xC4A0_5EED)
}

fn admission_on() -> bool {
    std::env::var("GCX_CHAOS_ADMISSION").as_deref() != Ok("off")
}

fn engine_yaml() -> &'static str {
    match std::env::var("GCX_CHAOS_ENGINE").as_deref() {
        Ok("ThreadEngine") => "engine:\n  type: ThreadEngine\n  workers: 2\n",
        _ => "engine:\n  type: GlobusComputeEngine\n  workers_per_node: 2\n",
    }
}

/// splitmix64: the workload generator. Deterministic per seed so a CI
/// failure reproduces locally with the same `GCX_CHAOS_SEED`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn real_service(admission: AdmissionConfig) -> WebService {
    let clock: SharedClock = SystemClock::shared();
    let cfg = CloudConfig {
        admission,
        ..CloudConfig::default()
    };
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    WebService::new(cfg, AuthService::new(clock.clone()), broker, clock)
}

/// The YAML `admission:` block is the operator's interface; the service
/// takes a plain `AdmissionConfig`. The mapping is field-for-field — this
/// pins it so a new knob cannot silently exist in one and not the other.
#[test]
fn admission_spec_maps_field_for_field_onto_admission_config() {
    let spec = AdmissionSpec::from_yaml(
        "admission:\n  enabled: true\n  rate_per_sec: 42\n  burst: 7\n  max_inflight: 3\n  retry_after_cap_ms: 900\n  brownout_threshold_ms: 1500\n  brownout_min_priority: 2\n",
    )
    .unwrap();
    let cfg = AdmissionConfig {
        enabled: spec.enabled,
        rate_per_sec: spec.rate_per_sec,
        burst: spec.burst,
        max_inflight: spec.max_inflight,
        retry_after_cap_ms: spec.retry_after_cap_ms,
        brownout_threshold_ms: spec.brownout_threshold_ms,
        brownout_min_priority: spec.brownout_min_priority,
    };
    assert_eq!(
        cfg,
        AdmissionConfig {
            enabled: true,
            rate_per_sec: 42,
            burst: 7,
            max_inflight: 3,
            retry_after_cap_ms: 900,
            brownout_threshold_ms: 1500,
            brownout_min_priority: 2,
        }
    );

    // And the mapped config actually governs the service: burst 7 admits
    // exactly 7 back-to-back submissions on a frozen clock.
    let vclock = VirtualClock::new();
    let clock: SharedClock = vclock.clone();
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let svc = WebService::new(
        CloudConfig {
            admission: cfg,
            ..CloudConfig::default()
        },
        AuthService::new(clock.clone()),
        broker,
        clock,
    );
    let (_, token) = svc.auth().login("spec@x.y").unwrap();
    let fid = svc
        .register_function(
            &token,
            gcx::core::function::FunctionBody::pyfn("def f():\n    return 1\n"),
        )
        .unwrap();
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    // max_inflight 3 is the binding limit here (burst 7 > inflight 3).
    for _ in 0..3 {
        svc.submit_task(&token, TaskSpec::new(fid, reg.endpoint_id))
            .unwrap();
    }
    let err = svc
        .submit_task(&token, TaskSpec::new(fid, reg.endpoint_id))
        .unwrap_err();
    assert!(matches!(err, GcxError::Overloaded { .. }));
    svc.shutdown();
}

/// Flood an *offline* endpoint's bounded task queue. The bound must hold
/// exactly: `depth` tasks buffer, every publish past it fails with a typed
/// retryable `QueueFull`, and the rejected submissions leave no live
/// records behind (nothing to drain beyond the bound, no hung tasks).
#[test]
fn bounded_task_queue_rejects_flood_with_typed_queue_full() {
    const DEPTH: usize = 8;
    const FLOOD: usize = 30;
    let clock: SharedClock = SystemClock::shared();
    let cfg = CloudConfig {
        task_queue_depth: DEPTH,
        ..CloudConfig::default()
    };
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let svc = WebService::new(cfg, AuthService::new(clock.clone()), broker, clock);
    let (_, token) = svc.auth().login("flood@x.y").unwrap();
    let client = Client::new(svc.clone(), token.clone());
    let fid = client
        .register_function(&PyFunction::new("def f():\n    return 1\n"))
        .unwrap();
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();

    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..FLOOD {
        match client.run(fid, reg.endpoint_id, vec![], Value::None) {
            Ok(id) => accepted.push(id),
            Err(GcxError::QueueFull { queue }) => {
                assert!(queue.contains("tasks."), "bound hit on the task queue");
                assert!(
                    GcxError::QueueFull { queue }.is_retryable(),
                    "backpressure must be retryable"
                );
                rejected += 1;
            }
            Err(other) => panic!("expected typed QueueFull, got {other}"),
        }
    }
    assert_eq!(accepted.len(), DEPTH, "the bound admits exactly its depth");
    assert_eq!(rejected, FLOOD - DEPTH);
    let depth_gauge = svc
        .metrics()
        .gauge(&format!("mq.depth.tasks.{}", reg.endpoint_id));
    assert_eq!(depth_gauge.get(), DEPTH as u64, "gauge tracks the bound");

    // Rejected submissions are terminal (typed retryable failure), not
    // orphaned live records a sweep or an operator would find dangling.
    let live: usize = accepted
        .iter()
        .filter(|id| {
            let (state, _) = client.task_status(**id).unwrap();
            !state.is_terminal()
        })
        .count();
    assert_eq!(live, DEPTH, "exactly the buffered tasks are live");

    // The endpoint comes online and drains exactly DEPTH tasks; the flood
    // never exceeded the bound inside the broker.
    let config = EndpointConfig::from_yaml(engine_yaml()).unwrap();
    let agent = EndpointAgent::start(
        &svc,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    for id in &accepted {
        client
            .get_result(*id, Duration::from_millis(5), Duration::from_secs(10))
            .unwrap();
    }
    assert_eq!(
        svc.metrics().counter("cloud.results_processed").get(),
        DEPTH as u64
    );
    agent.stop();
    svc.shutdown();
}

/// The headline soak: a hot tenant floods a live stack through the
/// `Executor` while a quiet tenant trickles. With admission on, the hot
/// tenant is throttled with typed `Overloaded` + `retry_after_ms` hints
/// that the SDK's retry loop honors; with it off nothing is shed. In both
/// modes every future resolves exactly once and the quiet tenant's work
/// all succeeds.
#[test]
fn hot_tenant_flood_resolves_exactly_once_and_never_starves_quiet_tenant() {
    let admission = AdmissionConfig {
        enabled: admission_on(),
        rate_per_sec: 5_000,
        burst: 5_000,
        // The binding limit: the hot tenant may hold at most 12 live tasks.
        max_inflight: 12,
        retry_after_cap_ms: 200,
        // Brownout is exercised separately on a virtual clock; a wall-clock
        // lag trigger would make this test machine-speed dependent.
        brownout_threshold_ms: 0,
        ..AdmissionConfig::default()
    };
    let svc = real_service(admission);
    let (_, hot_token) = svc.auth().login("hot@soak.org").unwrap();
    let (_, quiet_token) = svc.auth().login("quiet@soak.org").unwrap();
    let reg = svc
        .register_endpoint(&hot_token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml(engine_yaml()).unwrap();
    let agent = EndpointAgent::start(
        &svc,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();

    let mut rng = Rng(chaos_seed());
    // A generous budget: the point is typed pushback + eventual completion,
    // not exhaustion. Exhaustion resolving typed `Overloaded` is still a
    // pass for the tally below.
    let retry = RetryPolicy {
        max_attempts: 12,
        base_ms: 5,
        max_ms: 250,
        jitter: 0.2,
        seed: rng.next(),
    };
    let hot = Executor::with_config(
        svc.clone(),
        hot_token,
        reg.endpoint_id,
        ExecutorConfig {
            retry: retry.clone(),
            // Admission is all-or-nothing per batch: keep batches under the
            // 12-task quota so throttled work can be re-admitted as the
            // endpoint drains, instead of one 60-task batch that never fits.
            max_batch: 4,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let quiet = Executor::with_config(
        svc.clone(),
        quiet_token,
        reg.endpoint_id,
        ExecutorConfig {
            retry,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();

    // Each hot task holds a worker for a few ms so the tenant's in-flight
    // count genuinely builds past its quota.
    let busy = PyFunction::new("def f(t):\n    sleep(t)\n    return 'hot'\n");
    let ping = PyFunction::new("def f():\n    return 'quiet'\n");
    let resolutions = Arc::new(AtomicUsize::new(0));
    let mut hot_futures = Vec::new();
    for _ in 0..60 {
        let hold_ms = 5 + rng.below(15);
        let fut = hot
            .submit(
                &busy,
                vec![Value::Float(hold_ms as f64 / 1000.0)],
                Value::None,
            )
            .unwrap();
        let r = Arc::clone(&resolutions);
        fut.on_done(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
        hot_futures.push(fut);
        if rng.below(4) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let mut quiet_futures = Vec::new();
    for _ in 0..8 {
        quiet_futures.push(quiet.submit(&ping, vec![], Value::None).unwrap());
        std::thread::sleep(Duration::from_millis(2));
    }

    // The quiet tenant is untouched by the hot tenant's quota pressure.
    for fut in &quiet_futures {
        let v = fut.result_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(v, Value::str("quiet"));
    }
    // Every hot future resolves: success, or a typed overload rejection
    // after the retry budget — never a hang, never an untyped error.
    let mut completed = 0usize;
    let mut shed = 0usize;
    for fut in &hot_futures {
        match fut.result_timeout(Duration::from_secs(60)) {
            Ok(v) => {
                assert_eq!(v, Value::str("hot"));
                completed += 1;
            }
            Err(GcxError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= 1);
                shed += 1;
            }
            Err(other) => panic!("untyped failure under overload: {other}"),
        }
    }
    assert_eq!(completed + shed, 60);

    // Exactly-once: the on_done tally equals the futures resolved; no
    // double resolution from the retry machinery.
    let deadline = Instant::now() + Duration::from_secs(2);
    while resolutions.load(Ordering::SeqCst) < 60 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(resolutions.load(Ordering::SeqCst), 60);

    let rejected = svc
        .metrics()
        .counter("cloud.submits_rejected_overload")
        .get();
    let backoffs = svc.metrics().counter("sdk.overload_backoffs").get();
    if admission_on() {
        assert!(
            rejected > 0,
            "60 slow tasks against a 12-task quota must push back"
        );
        assert!(
            backoffs > 0,
            "the SDK saw Overloaded and stretched its backoff to the hint"
        );
    } else {
        assert_eq!(rejected, 0, "admission off sheds nothing");
        assert_eq!(shed, 0, "every task completes when nothing is shed");
    }
    hot.close();
    quiet.close();
    agent.stop();
    svc.shutdown();
}

/// Brownout under a seeded mixed-priority burst: once dispatch lag crosses
/// the threshold, *only* sub-threshold-priority traffic is shed, and every
/// rejection carries a retry hint bounded by the configured cap.
#[test]
fn brownout_sheds_exactly_the_low_priority_traffic() {
    let vclock = VirtualClock::new();
    let clock: SharedClock = vclock.clone();
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let svc = WebService::new(
        CloudConfig {
            admission: AdmissionConfig {
                enabled: true,
                rate_per_sec: 1_000_000,
                burst: 1_000_000,
                max_inflight: 0,
                retry_after_cap_ms: 700,
                brownout_threshold_ms: 1_000,
                brownout_min_priority: 3,
            },
            ..CloudConfig::default()
        },
        AuthService::new(clock.clone()),
        broker,
        clock,
    );
    let (_, token) = svc.auth().login("mixed@x.y").unwrap();
    let fid = svc
        .register_function(
            &token,
            gcx::core::function::FunctionBody::pyfn("def f():\n    return 1\n"),
        )
        .unwrap();
    let reg = svc
        .register_endpoint(&token, "dead-ep", false, AuthPolicy::open(), None)
        .unwrap();

    // One task buffers on the never-connecting endpoint; lag builds.
    svc.submit_task(&token, TaskSpec::new(fid, reg.endpoint_id))
        .unwrap();
    vclock.advance(1_500);
    svc.check_expiry();
    assert!(svc.brownout_active());

    let mut rng = Rng(chaos_seed() ^ 0xB120_0000);
    let mut shed = 0u64;
    let mut admitted = 0u64;
    for _ in 0..40 {
        let mut spec = TaskSpec::new(fid, reg.endpoint_id);
        spec.priority = rng.below(6) as i64; // 0..=5 around the threshold of 3
        let low = spec.priority < 3;
        match svc.submit_task(&token, spec) {
            Ok(_) => {
                assert!(!low, "brownout must shed everything below priority 3");
                admitted += 1;
            }
            Err(GcxError::Overloaded { retry_after_ms }) => {
                assert!(low, "priority >= 3 must keep flowing during brownout");
                assert!(
                    (1..=700).contains(&retry_after_ms),
                    "hint within the configured cap: {retry_after_ms}"
                );
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(shed + admitted, 40);
    assert!(shed > 0 && admitted > 0, "seeded mix crosses the threshold");
    assert_eq!(
        svc.metrics().counter("cloud.tasks_shed_brownout").get(),
        shed
    );
    svc.shutdown();
}

/// Deadlines hold end-to-end on a *real* clock: a task buffered on an
/// offline endpoint expires via the background sweep with a terminal,
/// typed `DeadlineExceeded` — no caller-side polling logic required.
#[test]
fn buffered_task_past_ttl_expires_with_typed_deadline_error() {
    let svc = real_service(AdmissionConfig::default());
    let (_, token) = svc.auth().login("ttl@x.y").unwrap();
    let client = Client::new(svc.clone(), token.clone());
    let fid = client
        .register_function(&PyFunction::new("def f():\n    return 1\n"))
        .unwrap();
    let reg = svc
        .register_endpoint(&token, "offline", false, AuthPolicy::open(), None)
        .unwrap();
    let mut spec = TaskSpec::new(fid, reg.endpoint_id);
    spec.deadline_ms = Some(100);
    let id = svc.submit_task(&token, spec).unwrap();

    // The background sweep (25 ms cadence) expires it shortly after the TTL.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (state, result) = client.task_status(id).unwrap();
        if state == TaskState::Cancelled {
            let result = result.expect("expired task carries a result");
            assert!(result.is_deadline_err());
            assert_eq!(
                result.into_result().unwrap_err(),
                GcxError::DeadlineExceeded(id)
            );
            break;
        }
        assert!(Instant::now() < deadline, "TTL never enforced");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(svc.metrics().counter("cloud.tasks_expired").get(), 1);
    svc.shutdown();
}

/// A *running* task past its deadline is killed inside the engine (the
/// worker's slot is reclaimed) while the cloud sweep lands the typed
/// expiry — and the endpoint immediately serves new work again.
#[test]
fn running_task_past_deadline_is_killed_and_worker_recovers() {
    let svc = real_service(AdmissionConfig::default());
    let (_, token) = svc.auth().login("kill@x.y").unwrap();
    let client = Client::new(svc.clone(), token.clone());
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let env = AgentEnv::local(SystemClock::shared());
    let engine_metrics = env.metrics.clone();
    let config = EndpointConfig::from_yaml(engine_yaml()).unwrap();
    let agent =
        EndpointAgent::start(&svc, reg.endpoint_id, &reg.queue_credential, &config, env).unwrap();

    // Holds a worker for 1.2 s against a 150 ms deadline.
    let slow = client
        .register_function(&PyFunction::new(
            "def f():\n    sleep(1.2)\n    return 'late'\n",
        ))
        .unwrap();
    let quick = client
        .register_function(&PyFunction::new("def f():\n    return 'ok'\n"))
        .unwrap();
    let mut spec = TaskSpec::new(slow, reg.endpoint_id);
    spec.deadline_ms = Some(150);
    let doomed = svc.submit_task(&token, spec).unwrap();

    let err = client
        .get_result(doomed, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap_err();
    assert_eq!(err, GcxError::DeadlineExceeded(doomed));
    // Two typed expiry paths race: the cloud sweep (Cancelled) and the
    // engine's kill result (Failed). Either way the record is terminal
    // with the deadline error — never a plain untyped failure.
    let (state, result) = client.task_status(doomed).unwrap();
    assert!(matches!(state, TaskState::Cancelled | TaskState::Failed));
    assert!(result.unwrap().is_deadline_err());

    // The engine's own kill fired (backlog or in-flight), reclaiming the
    // slot rather than letting the sleep run to completion unsupervised.
    let deadline = Instant::now() + Duration::from_secs(5);
    let kind = if engine_yaml().contains("ThreadEngine") {
        "thread"
    } else {
        "htex"
    };
    while engine_metrics
        .counter(&format!("{kind}.deadline_kills"))
        .get()
        == 0
    {
        assert!(Instant::now() < deadline, "engine never killed the task");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Fresh work flows immediately after the kill.
    let sentinel = client
        .run(quick, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    let v = client
        .get_result(sentinel, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    assert_eq!(v, Value::str("ok"));

    agent.stop();
    svc.shutdown();
}

//! Connection-chaos tests: faults injected into the *wire* between the SDK
//! and the service — abrupt client death, a partitioned-then-restarted
//! server, a client process restart — while a real workload is in flight.
//!
//! The acceptance bar mirrors the other chaos suites: every submitted task
//! reaches a terminal state with the correct result, the SDK observes each
//! result exactly once, and each task's trace carries exactly one `result`
//! span with nothing dangling. Unlike the virtual-clock suites, the wire
//! layer runs on real sockets and real time; determinism comes from
//! scripting *where* the fault lands, not when the clock ticks.
//!
//! `GCX_CHAOS_TRANSPORT` (decimal or `0x`-hex; falls back to
//! `GCX_CHAOS_SEED`, then a fixed default) seeds the workload shape — task
//! counts and fault points — so CI sweeps a matrix of cut points.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcx::auth::{AuthPolicy, AuthService};
use gcx::cloud::{CloudConfig, WebService, WireServer};
use gcx::config::TransportSpec;
use gcx::core::clock::SystemClock;
use gcx::core::ids::TaskId;
use gcx::core::metrics::MetricsRegistry;
use gcx::core::retry::RetryPolicy;
use gcx::core::task::{TaskResult, TaskSpec};
use gcx::core::value::Value;
use gcx::core::wire::{Frame, FrameType, TcpTransport, Transport, DEFAULT_MAX_FRAME};
use gcx::mq::{Broker, LinkProfile};
use gcx::sdk::{Executor, ExecutorConfig, Link, PyFunction, TaskFuture, WireClientConfig};

fn chaos_seed() -> u64 {
    let parse = |s: String| {
        let s = s.trim().to_string();
        match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        }
    };
    std::env::var("GCX_CHAOS_TRANSPORT")
        .ok()
        .and_then(parse)
        .or_else(|| std::env::var("GCX_CHAOS_SEED").ok().and_then(parse))
        .unwrap_or(0x71A5_0011)
}

/// Tiny deterministic generator (splitmix64) for seed-derived workload
/// shape; avoids dragging a PRNG dependency into the test.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn wire_service() -> WebService {
    let clock = SystemClock::shared();
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    WebService::new(
        CloudConfig {
            // The wire layer runs on real time; keep the endpoint liveness
            // sweep far away so only connection faults are in play.
            heartbeat_timeout_ms: 600_000,
            ..CloudConfig::default()
        },
        AuthService::new(clock.clone()),
        broker,
        clock,
    )
}

fn fast_spec() -> TransportSpec {
    TransportSpec {
        heartbeat_interval_ms: 100,
        idle_timeout_ms: 1_000,
        ..TransportSpec::default()
    }
}

fn wire_cfg() -> WireClientConfig {
    WireClientConfig {
        heartbeat_interval: Duration::from_millis(100),
        call_timeout: Duration::from_secs(5),
        ..WireClientConfig::default()
    }
}

/// Count every resolution the SDK observes; a duplicate delivery that
/// re-resolved a future would show as `resolutions > futures`.
fn observe(futures: &[TaskFuture]) -> Arc<AtomicUsize> {
    let resolutions = Arc::new(AtomicUsize::new(0));
    for f in futures {
        let r = Arc::clone(&resolutions);
        f.on_done(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    resolutions
}

fn assert_observed_exactly(resolutions: &AtomicUsize, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while resolutions.load(Ordering::SeqCst) < expect && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        resolutions.load(Ordering::SeqCst),
        expect,
        "the SDK must observe each result exactly once"
    );
}

/// Every task trace must link submit → result with exactly one `result`
/// span and no dangling spans — the trace-level exactly-once check.
fn assert_traces_linked(svc: &WebService, tasks: usize) {
    let traces: Vec<_> = svc
        .metrics()
        .tracer()
        .traces()
        .into_iter()
        .filter(|t| t.spans_named("submit").count() >= 1)
        .collect();
    assert_eq!(traces.len(), tasks, "one trace per submitted task");
    for t in &traces {
        assert_eq!(
            t.spans_named("result").count(),
            1,
            "exactly one result span per task trace"
        );
        assert!(
            t.orphan_spans().is_empty(),
            "every span must link into its task's trace"
        );
    }
}

fn drain_queue(svc: &WebService, reg: &gcx::cloud::EndpointRegistration, n: usize) {
    let session = svc
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut served = 0;
    while served < n {
        assert!(Instant::now() < deadline, "served only {served} of {n}");
        if let Some((spec, tag)) = session.next_task(Duration::from_millis(10)).unwrap() {
            session
                .publish_result(
                    spec.task_id,
                    &TaskResult::ok(Value::Int(
                        spec.decode_args().unwrap().0[0].as_int().unwrap() * 2,
                    )),
                )
                .unwrap();
            session.ack_task(tag).unwrap();
            served += 1;
        }
    }
}

/// Scenario 1 — a TCP client is killed mid-batch: it handshakes, submits a
/// seeded batch over the raw wire, and dies without a `Goodbye` (socket
/// severed, frames half-expected). The server must tear the connection
/// down, the accepted batch must still run to completion, and the results
/// must land exactly once.
#[test]
fn tcp_client_killed_mid_batch_tasks_complete_exactly_once() {
    let mut seed = chaos_seed();
    let tasks = 6 + (mix(&mut seed) % 8) as usize; // 6..=13
    let svc = wire_service();
    let server = WireServer::listen(&svc, fast_spec()).unwrap();
    let (_, token) = svc.auth().login("transport-kill@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let fid = svc
        .register_function(
            &token,
            gcx::core::function::FunctionBody::pyfn("def f(x):\n    return x * 2\n"),
        )
        .unwrap();

    // A raw wire client: handshake, submit, die. No SDK conveniences — the
    // point is what the *server* does when the socket vanishes mid-flight.
    let transport = TcpTransport::connect(server.addr(), DEFAULT_MAX_FRAME).unwrap();
    transport.send(&Frame::hello(token.0.clone())).unwrap();
    let ack = transport
        .recv(Duration::from_secs(5))
        .unwrap()
        .expect("hello ack");
    assert_eq!(ack.frame_type, FrameType::HelloAck);

    let specs: Vec<Value> = (0..tasks)
        .map(|i| {
            let mut spec = TaskSpec::new(fid, reg.endpoint_id);
            spec.set_args(vec![Value::Int(i as i64)], Value::None);
            spec.to_value()
        })
        .collect();
    transport
        .send(&Frame::request(
            1,
            "submit_batch",
            Value::map([("specs", Value::List(specs))]),
        ))
        .unwrap();
    let resp = transport
        .recv(Duration::from_secs(5))
        .unwrap()
        .expect("submit response");
    let ids: Vec<TaskId> = resp
        .payload
        .get("ok")
        .and_then(|ok| ok.get("ids"))
        .and_then(Value::as_list)
        .expect("ids in response")
        .iter()
        .map(|v| v.as_str().unwrap().parse().unwrap())
        .collect();
    assert_eq!(ids.len(), tasks);

    // Kill: sever the socket with the batch in flight. No Goodbye, no
    // stream close, nothing — as SIGKILL would leave it.
    transport.close();

    // The server notices and reaps the connection.
    let deadline = Instant::now() + Duration::from_secs(3);
    while server.conn_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.conn_count(),
        0,
        "severed connection must be torn down"
    );

    // The accepted batch is not tied to the connection's fate.
    drain_queue(&svc, &reg, tasks);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let statuses = svc.task_status_batch(&token, &ids).unwrap();
        if statuses.len() == tasks && statuses.iter().all(|(_, s, _)| s.is_terminal()) {
            for (id, _, result) in statuses {
                let idx = ids.iter().position(|t| *t == id).unwrap() as i64;
                let result = result.expect("terminal task carries its result");
                match result.ok_value() {
                    Some(v) => assert_eq!(v, Value::Int(idx * 2)),
                    None => panic!("task {id}: unexpected {result:?}"),
                }
            }
            break;
        }
        assert!(Instant::now() < deadline, "tasks did not finish");
        std::thread::sleep(Duration::from_millis(10));
    }

    let m = svc.metrics();
    assert_eq!(m.counter("cloud.results_processed").get(), tasks as u64);
    assert_eq!(m.counter("cloud.duplicate_results_dropped").get(), 0);
    assert_traces_linked(&svc, tasks);
    server.shutdown();
    svc.shutdown();
}

/// Scenario 2 — the server partitions away mid-result-stream and later
/// restarts on the same address: an executor is mid-workload over TCP when
/// every socket dies; results keep landing service-side during the outage;
/// the executor reconnects, resubscribes, catches up, and every future
/// resolves exactly once.
#[test]
fn server_partition_mid_stream_executor_reconnects_exactly_once() {
    let mut seed = chaos_seed();
    let tasks = 10 + (mix(&mut seed) % 8) as usize; // 10..=17
    let before_cut = 2 + (mix(&mut seed) % 3) as usize; // served before the cut
    let during_cut = 2 + (mix(&mut seed) % 3) as usize; // served while partitioned

    // Reserve a port so the restarted server can come back on the address
    // the client keeps dialing.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let spec = TransportSpec {
        listen_addr: addr.clone(),
        ..fast_spec()
    };
    let svc = wire_service();
    let server = WireServer::listen(&svc, spec.clone()).unwrap();
    let (_, token) = svc.auth().login("transport-part@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();

    let ex = Executor::over_wire(
        vec![addr],
        &token.0,
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(40, 50),
            ..ExecutorConfig::default()
        },
        wire_cfg(),
    )
    .unwrap();
    let double = PyFunction::new("def f(x):\n    return x * 2\n");
    let futures: Vec<TaskFuture> = (0..tasks)
        .map(|i| {
            ex.submit(&double, vec![Value::Int(i as i64)], Value::None)
                .unwrap()
        })
        .collect();
    let resolutions = observe(&futures);

    // Wait until the whole workload is submitted server-side, then serve a
    // seeded prefix and confirm those results arrive over the push stream.
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.metrics().counter("cloud.tasks_submitted").get() < tasks as u64 {
        assert!(Instant::now() < deadline, "submissions did not land");
        std::thread::sleep(Duration::from_millis(5));
    }
    drain_queue(&svc, &reg, before_cut);
    let deadline = Instant::now() + Duration::from_secs(10);
    while resolutions.load(Ordering::SeqCst) < before_cut {
        assert!(Instant::now() < deadline, "pre-cut results did not stream");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Partition: every wire socket dies mid-stream. The service itself
    // stays up — results served during the outage land in the task store.
    server.shutdown();
    drain_queue(&svc, &reg, during_cut);
    std::thread::sleep(Duration::from_millis(300));

    // Heal: same address, fresh listener. The executor's link redials,
    // reopens the stream, and catch-up recovers the outage-window results.
    let server = WireServer::listen(&svc, spec).unwrap();
    drain_queue(&svc, &reg, tasks - before_cut - during_cut);

    for (i, f) in futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(20)).unwrap(),
            Value::Int(i as i64 * 2),
            "task {i} must survive the partition"
        );
    }
    assert_observed_exactly(&resolutions, tasks);
    assert!(
        ex.metrics().counter("sdk.stream_reconnects").get() >= 1
            || ex.metrics().counter("sdk.wire_reconnects").get() >= 1,
        "the partition must be visible as a reconnect"
    );
    assert_traces_linked(&svc, tasks);
    // Client-side: the kill-and-reconnect must leave exactly one linked
    // trace per task on the SDK's own collector, with the wire legs
    // stamped and nothing dangling — the wire kill must not orphan or
    // duplicate a trace.
    let client_traces = ex.metrics().tracer().traces();
    assert_eq!(
        client_traces.len(),
        tasks,
        "one client-side trace per submitted task"
    );
    for t in &client_traces {
        assert!(
            t.spans_named("wire.send").count() >= 1,
            "client trace missing its wire.send leg"
        );
        assert!(
            t.spans_named("wire.await").count() >= 1,
            "client trace missing its wire.await leg"
        );
        assert!(
            t.orphan_spans().is_empty(),
            "client wire legs must link into their task's trace"
        );
    }
    ex.close();
    server.shutdown();
    svc.shutdown();
}

/// Scenario 4 — overload black box: a submit flood over the wire against a
/// tiny bounded task queue trips the typed `QueueFull` rollback; the
/// flight recorder must hold the rejected tasks' last events (one
/// `batch_rollback` per task, by id) and fire its `queue_full` dump
/// trigger exactly once.
#[test]
fn queue_full_flood_dumps_flight_recorder_evidence() {
    let mut seed = chaos_seed();
    let depth = 2 + (mix(&mut seed) % 3) as usize; // 2..=4
    let clock = SystemClock::shared();
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let svc = WebService::new(
        CloudConfig {
            heartbeat_timeout_ms: 600_000,
            task_queue_depth: depth,
            ..CloudConfig::default()
        },
        AuthService::new(clock.clone()),
        broker,
        clock,
    );
    let server = WireServer::listen(&svc, fast_spec()).unwrap();
    let (_, token) = svc.auth().login("transport-flood@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let link = Link::connect(vec![server.addr().to_string()], &token.0, wire_cfg()).unwrap();
    let auth_token = gcx::auth::Token(token.0.clone());
    let fid = link
        .register_function(
            &auth_token,
            gcx::core::function::FunctionBody::pyfn("def f(x):\n    return x\n"),
        )
        .unwrap();

    // One batch larger than the queue bound: the whole batch rolls back
    // with a typed QueueFull that survives the wire.
    let flood: Vec<TaskSpec> = (0..depth * 3)
        .map(|i| {
            let mut spec = TaskSpec::new(fid, reg.endpoint_id);
            spec.set_args(vec![Value::Int(i as i64)], Value::None);
            spec
        })
        .collect();
    let err = link.submit_batch(&auth_token, &flood).unwrap_err();
    assert!(
        matches!(err, gcx::core::error::GcxError::QueueFull { .. }),
        "flood must be refused with a typed QueueFull, got {err:?}"
    );

    // The black box holds the rejected tasks' final events...
    let flight = svc.metrics().flight();
    let rollbacks: Vec<_> = flight
        .events()
        .into_iter()
        .filter(|e| e.component == "cloud.dispatch" && e.event == "batch_rollback")
        .collect();
    assert_eq!(
        rollbacks.len(),
        flood.len(),
        "one rollback event per rejected task"
    );
    // ...attributable by task id, and the dump carries them verbatim.
    let dump = flight.dump();
    for spec in &flood {
        let needle = format!("task={}", spec.task_id);
        assert!(
            rollbacks.iter().any(|e| e.detail.contains(&needle)),
            "no flight event for rejected {needle}"
        );
        assert!(dump.contains(&needle), "dump missing {needle}");
    }
    // The QueueFull storm fired the at-most-once dump trigger.
    assert!(
        flight.triggered_reasons().iter().any(|r| r == "queue_full"),
        "queue_full must trigger a flight dump"
    );
    link.close();
    server.shutdown();
    svc.shutdown();
}

/// Scenario 3 — client restart: a wire client submits a workload and dies;
/// a *new* client (fresh connection, no shared state) picks the task ids up
/// and polls them to completion. The task store, not the connection, is the
/// source of truth.
#[test]
fn restarted_client_resumes_by_polling_exactly_once() {
    let mut seed = chaos_seed();
    let tasks = 6 + (mix(&mut seed) % 6) as usize; // 6..=11
    let svc = wire_service();
    let server = WireServer::listen(&svc, fast_spec()).unwrap();
    let (_, token) = svc.auth().login("transport-restart@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();

    // First life: connect, submit, die abruptly.
    let link = Link::connect(vec![server.addr().to_string()], &token.0, wire_cfg()).unwrap();
    let auth_token = gcx::auth::Token(token.0.clone());
    let fid = link
        .register_function(
            &auth_token,
            gcx::core::function::FunctionBody::pyfn("def f(x):\n    return x * 2\n"),
        )
        .unwrap();
    let specs: Vec<TaskSpec> = (0..tasks)
        .map(|i| {
            let mut spec = TaskSpec::new(fid, reg.endpoint_id);
            spec.set_args(vec![Value::Int(i as i64)], Value::None);
            spec
        })
        .collect();
    let ids = link.submit_batch(&auth_token, &specs).unwrap();
    drop(link); // restart: the old process is gone, ids survive on disk/in the caller

    drain_queue(&svc, &reg, tasks);

    // Second life: a fresh connection resumes by id.
    let link = Link::connect(vec![server.addr().to_string()], &token.0, wire_cfg()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let statuses = link.task_status_batch(&auth_token, &ids).unwrap();
        if statuses.len() == tasks && statuses.iter().all(|(_, s, _)| s.is_terminal()) {
            for (id, _, result) in statuses {
                let idx = ids.iter().position(|t| *t == id).unwrap() as i64;
                let result = result.expect("terminal task carries its result");
                match result.ok_value() {
                    Some(v) => assert_eq!(v, Value::Int(idx * 2)),
                    None => panic!("task {id}: unexpected {result:?}"),
                }
            }
            break;
        }
        assert!(Instant::now() < deadline, "tasks did not finish");
        std::thread::sleep(Duration::from_millis(10));
    }
    link.close();

    let m = svc.metrics();
    assert_eq!(m.counter("cloud.results_processed").get(), tasks as u64);
    assert_eq!(m.counter("cloud.duplicate_results_dropped").get(), 0);
    assert_traces_linked(&svc, tasks);
    server.shutdown();
    svc.shutdown();
}

//! End-to-end integration tests spanning SDK → cloud → broker → endpoint →
//! engine → workers and back.

use std::time::Duration;

use gcx::auth::AuthPolicy;
use gcx::batch::{BatchScheduler, ClusterSpec};
use gcx::cloud::WebService;
use gcx::core::clock::SystemClock;
use gcx::core::error::GcxError;
use gcx::core::respec::ResourceSpec;
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::sdk::{Client, Executor, MpiFunction, PyFunction, ShellFunction};

fn wait_all(futures: &[gcx::sdk::TaskFuture]) -> Vec<Value> {
    futures
        .iter()
        .map(|f| f.result_timeout(Duration::from_secs(30)).unwrap())
        .collect()
}

#[test]
fn full_stack_fan_out_and_collect() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("integration@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml(
        "engine:\n  type: GlobusComputeEngine\n  nodes_per_block: 2\n  max_blocks: 2\n  workers_per_node: 4\n",
    )
    .unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();

    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();
    let work = PyFunction::new(
        "def work(i):\n    xs = []\n    for k in range(i % 7 + 1):\n        xs.append(k * i)\n    return sum(xs)\n",
    );
    let futures: Vec<_> = (0..200)
        .map(|i| ex.submit(&work, vec![Value::Int(i)], Value::None).unwrap())
        .collect();
    let results = wait_all(&futures);
    for (i, r) in results.iter().enumerate() {
        let i = i as i64;
        let n = i % 7 + 1;
        let expect: i64 = (0..n).map(|k| k * i).sum();
        assert_eq!(r, &Value::Int(expect), "task {i}");
    }
    assert_eq!(ex.inflight(), 0);
    ex.close();
    agent.stop();
    cloud.shutdown();
}

#[test]
fn mixed_function_kinds_share_an_endpoint() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("mixed@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml(
        "engine:\n  type: GlobusComputeEngine\n  workers_per_node: 2\n  sandbox: true\n",
    )
    .unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();

    let py = PyFunction::new("def f(x):\n    return x * 10\n");
    let sh = ShellFunction::new("seq {n} | wc -l");
    let py_fut = ex.submit(&py, vec![Value::Int(5)], Value::None).unwrap();
    let sh_fut = ex
        .submit(&sh, vec![], Value::map([("n", Value::Int(12))]))
        .unwrap();

    assert_eq!(
        py_fut.result_timeout(Duration::from_secs(10)).unwrap(),
        Value::Int(50)
    );
    let sr = sh_fut.shell_result().unwrap();
    assert_eq!(sr.stdout.trim(), "12");
    ex.close();
    agent.stop();
    cloud.shutdown();
}

#[test]
fn endpoint_restart_preserves_buffered_tasks() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("restart@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "flaky", false, AuthPolicy::open(), None)
        .unwrap();
    let client = Client::new(cloud.clone(), token.clone());
    let fid = client
        .register_function(&PyFunction::new("def f(x):\n    return x + 100\n"))
        .unwrap();

    // Submit with the agent offline: fire-and-forget buffering.
    let t1 = client
        .run(fid, reg.endpoint_id, vec![Value::Int(1)], Value::None)
        .unwrap();
    let t2 = client
        .run(fid, reg.endpoint_id, vec![Value::Int(2)], Value::None)
        .unwrap();

    // First agent comes up, serves the backlog, goes away.
    let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
    {
        let agent = EndpointAgent::start(
            &cloud,
            reg.endpoint_id,
            &reg.queue_credential,
            &config,
            AgentEnv::local(SystemClock::shared()),
        )
        .unwrap();
        assert_eq!(
            client
                .get_result(t1, Duration::from_millis(5), Duration::from_secs(10))
                .unwrap(),
            Value::Int(101)
        );
        assert_eq!(
            client
                .get_result(t2, Duration::from_millis(5), Duration::from_secs(10))
                .unwrap(),
            Value::Int(102)
        );
        agent.stop();
    }

    // Submit while down again; a *restarted* agent picks it up.
    let t3 = client
        .run(fid, reg.endpoint_id, vec![Value::Int(3)], Value::None)
        .unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    assert_eq!(
        client
            .get_result(t3, Duration::from_millis(5), Duration::from_secs(10))
            .unwrap(),
        Value::Int(103)
    );
    agent.stop();
    cloud.shutdown();
}

#[test]
fn two_endpoints_one_executor_each() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("multi@test.org").unwrap();

    let mut agents = Vec::new();
    let mut eps = Vec::new();
    for name in ["site-a", "site-b"] {
        let reg = cloud
            .register_endpoint(&token, name, false, AuthPolicy::open(), None)
            .unwrap();
        let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
        let mut env = AgentEnv::local(SystemClock::shared());
        env.hostname = name.to_string();
        agents.push(
            EndpointAgent::start(&cloud, reg.endpoint_id, &reg.queue_credential, &config, env)
                .unwrap(),
        );
        eps.push(reg.endpoint_id);
    }

    let f = PyFunction::new("def f():\n    return hostname()\n");
    let mut hosts = Vec::new();
    for ep in &eps {
        let ex = Executor::new(cloud.clone(), token.clone(), *ep).unwrap();
        let fut = ex.submit(&f, vec![], Value::None).unwrap();
        hosts.push(
            fut.result_timeout(Duration::from_secs(10))
                .unwrap()
                .to_string(),
        );
        ex.close();
    }
    assert!(hosts[0].starts_with("site-a"));
    assert!(hosts[1].starts_with("site-b"));
    for a in agents {
        a.stop();
    }
    cloud.shutdown();
}

#[test]
fn mpi_and_batch_stack_end_to_end() {
    let clock = SystemClock::shared();
    let cloud = WebService::with_defaults(clock.clone());
    let (_, token) = cloud.auth().login("mpi@test.org").unwrap();
    let scheduler = BatchScheduler::new(ClusterSpec::simple(4), clock.clone());
    let reg = cloud
        .register_endpoint(&token, "hpc", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml(
        "engine:\n  type: GlobusMPIEngine\n  nodes_per_block: 4\n  mpi_launcher: srun\n  provider:\n    type: SlurmProvider\n    partition: cpu\n    account: alloc\n    walltime: \"01:00:00\"\n",
    )
    .unwrap();
    let mut env = AgentEnv::local(clock);
    env.scheduler = Some(scheduler);
    let agent =
        EndpointAgent::start(&cloud, reg.endpoint_id, &reg.queue_credential, &config, env).unwrap();

    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();
    let func = MpiFunction::new("echo rank $RANK of $SIZE on $HOSTNAME");
    ex.set_resource_specification(ResourceSpec::nodes_ranks(2, 2));
    let fut = ex.submit(&func, vec![], Value::None).unwrap();
    let sr = fut.shell_result().unwrap();
    assert_eq!(sr.returncode, 0);
    assert_eq!(sr.stdout.lines().count(), 4);
    assert!(sr.cmd.starts_with("srun --ntasks=4"));
    for line in sr.stdout.lines() {
        assert!(line.contains("on node-"), "ran on scheduler nodes: {line}");
    }
    ex.close();
    agent.stop();
    cloud.shutdown();
}

#[test]
fn oversized_payload_rejected_then_small_succeeds() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("limits@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();
    let f = PyFunction::new("def f(b):\n    return len(b)\n");

    // >10 MB: the batch is rejected, the future fails.
    let fut = ex
        .submit(
            &f,
            vec![Value::Bytes(vec![0u8; 11 * 1024 * 1024])],
            Value::None,
        )
        .unwrap();
    let err = fut.result_timeout(Duration::from_secs(10)).unwrap_err();
    assert!(matches!(err, GcxError::PayloadTooLarge { .. }));

    // 1 MB: offloaded to S3 internally, succeeds.
    let fut = ex
        .submit(&f, vec![Value::Bytes(vec![0u8; 1024 * 1024])], Value::None)
        .unwrap();
    assert_eq!(
        fut.result_timeout(Duration::from_secs(10)).unwrap(),
        Value::Int(1024 * 1024)
    );
    ex.close();
    agent.stop();
    cloud.shutdown();
}

#[test]
fn sandboxing_prevents_shellfunction_contention() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("sandbox@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml(
        "engine:\n  type: GlobusComputeEngine\n  workers_per_node: 4\n  sandbox: true\n",
    )
    .unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();

    // Every task writes "its" file, then reads it back: with sandboxing
    // each sees exactly its own content even under concurrency.
    let sf = ShellFunction::new("echo {tag} > out.txt; cat out.txt");
    let futures: Vec<_> = (0..20)
        .map(|i| {
            ex.submit(&sf, vec![], Value::map([("tag", Value::Int(i))]))
                .unwrap()
        })
        .collect();
    for (i, fut) in futures.iter().enumerate() {
        let sr = fut.shell_result().unwrap();
        assert_eq!(sr.stdout.trim(), i.to_string(), "task {i} saw its own file");
    }
    ex.close();
    agent.stop();
    cloud.shutdown();
}

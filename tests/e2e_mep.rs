//! Integration tests for the multi-user endpoint flow (Fig. 1, §IV),
//! including cloud-side policies and allowed-function lists.

use std::sync::Arc;
use std::time::Duration;

use gcx::auth::{AuthPolicy, ExpressionMapping, IdentityMapper};
use gcx::cloud::WebService;
use gcx::config::Template;
use gcx::core::clock::SystemClock;
use gcx::core::error::GcxError;
use gcx::core::value::Value;
use gcx::endpoint::AgentEnv;
use gcx::mep::{MepSetup, MultiUserEndpoint};
use gcx::sdk::{Executor, PyFunction};

const TEMPLATE: &str =
    "engine:\n  type: GlobusComputeEngine\n  workers_per_node: {{ WORKERS|default(2) }}\n";

fn mapper_for(domain: &str) -> IdentityMapper {
    let mut mapper = IdentityMapper::new();
    mapper
        .add_expression(ExpressionMapping::username_capture(domain))
        .unwrap();
    mapper
}

fn env_factory() -> gcx::mep::EnvFactory {
    Arc::new(|local_user: &str| {
        let mut env = AgentEnv::local(SystemClock::shared());
        env.hostname = format!("host-{local_user}");
        env
    })
}

#[test]
fn fig1_full_flow_submit_spawn_execute() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, admin) = cloud.auth().login("root@site.edu").unwrap();
    let reg = cloud
        .register_endpoint(&admin, "mep", true, AuthPolicy::open(), None)
        .unwrap();
    let mep = MultiUserEndpoint::start(
        cloud.clone(),
        reg.endpoint_id,
        &reg.queue_credential,
        MepSetup::new(
            mapper_for("site.edu"),
            Template::parse(TEMPLATE).unwrap(),
            env_factory(),
        ),
    )
    .unwrap();

    // Step 1: the user submits to the MEP id with a config.
    let (_, user) = cloud.auth().login("jane@site.edu").unwrap();
    let ex = Executor::new(cloud.clone(), user, reg.endpoint_id).unwrap();
    ex.set_user_endpoint_config(Value::map([("WORKERS", Value::Int(2))]));
    let f = PyFunction::new("def f():\n    return hostname()\n");
    // Steps 2–3 happen behind the scenes; the future just resolves.
    let fut = ex.submit(&f, vec![], Value::None).unwrap();
    let host = fut.result_timeout(Duration::from_secs(20)).unwrap();
    assert!(host.as_str().unwrap().starts_with("host-jane"));
    assert_eq!(mep.total_spawned(), 1);

    // The spawned UEP is tracked by the cloud under the MEP.
    assert_eq!(cloud.user_endpoints_of(reg.endpoint_id).len(), 1);
    ex.close();
    mep.stop();
    cloud.shutdown();
}

#[test]
fn fan_out_many_users_many_configs() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, admin) = cloud.auth().login("root@hpc.org").unwrap();
    let reg = cloud
        .register_endpoint(&admin, "mep", true, AuthPolicy::open(), None)
        .unwrap();
    let mep = MultiUserEndpoint::start(
        cloud.clone(),
        reg.endpoint_id,
        &reg.queue_credential,
        MepSetup::new(
            mapper_for("hpc.org"),
            Template::parse(TEMPLATE).unwrap(),
            env_factory(),
        ),
    )
    .unwrap();

    let f = PyFunction::new("def f(x):\n    return x\n");
    let mut futures = Vec::new();
    // 4 users × 2 configs = 8 distinct user endpoints.
    for u in 0..4 {
        let (_, token) = cloud.auth().login(&format!("user{u}@hpc.org")).unwrap();
        for w in [1i64, 2] {
            let ex = Executor::new(cloud.clone(), token.clone(), reg.endpoint_id).unwrap();
            ex.set_user_endpoint_config(Value::map([("WORKERS", Value::Int(w))]));
            futures.push((ex, w));
        }
    }
    let pending: Vec<_> = futures
        .iter()
        .map(|(ex, w)| ex.submit(&f, vec![Value::Int(*w)], Value::None).unwrap())
        .collect();
    for fut in &pending {
        fut.result_timeout(Duration::from_secs(30)).unwrap();
    }
    assert_eq!(mep.total_spawned(), 8);
    assert_eq!(mep.local_users().len(), 4);
    for (ex, _) in futures {
        ex.close();
    }
    mep.stop();
    cloud.shutdown();
}

#[test]
fn cloud_policy_blocks_before_mep_sees_anything() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, admin) = cloud.auth().login("root@anl.gov").unwrap();
    // Policy: only anl.gov identities may even submit (§IV-A.5 is enforced
    // at the web service, before the endpoint).
    let reg = cloud
        .register_endpoint(&admin, "mep", true, AuthPolicy::domains(&["anl.gov"]), None)
        .unwrap();
    let mep = MultiUserEndpoint::start(
        cloud.clone(),
        reg.endpoint_id,
        &reg.queue_credential,
        MepSetup::new(
            mapper_for("anl.gov"),
            Template::parse(TEMPLATE).unwrap(),
            env_factory(),
        ),
    )
    .unwrap();

    let (_, outsider) = cloud.auth().login("eve@other.org").unwrap();
    let ex = Executor::new(cloud.clone(), outsider, reg.endpoint_id).unwrap();
    let f = PyFunction::new("def f():\n    return 1\n");
    let fut = ex.submit(&f, vec![], Value::None).unwrap();
    let err = fut.result_timeout(Duration::from_secs(10)).unwrap_err();
    assert!(matches!(err, GcxError::Forbidden(_)), "{err}");
    // The MEP never spawned anything — the cloud rejected the submission.
    assert_eq!(mep.total_spawned(), 0);
    assert_eq!(mep.denied(), 0);
    ex.close();
    mep.stop();
    cloud.shutdown();
}

#[test]
fn allowed_functions_restrict_gateway_endpoints() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, admin) = cloud.auth().login("gateway@esgf.org").unwrap();
    // A science-gateway style deployment (§VI): only the reviewed function
    // may run.
    let approved = cloud
        .register_function(
            &admin,
            gcx::core::function::FunctionBody::pyfn("def approved():\n    return 'ok'\n"),
        )
        .unwrap();
    let reg = cloud
        .register_endpoint(
            &admin,
            "gateway-mep",
            true,
            AuthPolicy::open(),
            Some(vec![approved]),
        )
        .unwrap();
    let mep = MultiUserEndpoint::start(
        cloud.clone(),
        reg.endpoint_id,
        &reg.queue_credential,
        MepSetup::new(
            mapper_for("esgf.org"),
            Template::parse(TEMPLATE).unwrap(),
            env_factory(),
        ),
    )
    .unwrap();

    let (_, user) = cloud.auth().login("scientist@esgf.org").unwrap();

    // The approved function runs…
    let client = gcx::sdk::Client::new(cloud.clone(), user.clone());
    let mut spec = gcx::core::task::TaskSpec::new(approved, reg.endpoint_id);
    spec.user_endpoint_config = Value::map([("WORKERS", Value::Int(1))]);
    let task = client.run_spec(spec).unwrap();
    let out = client
        .get_result(task, Duration::from_millis(10), Duration::from_secs(20))
        .unwrap();
    assert_eq!(out, Value::str("ok"));

    // …an unapproved one is rejected at submission.
    let ex = Executor::new(cloud.clone(), user, reg.endpoint_id).unwrap();
    let rogue = PyFunction::new("def rogue():\n    return 'pwned'\n");
    let fut = ex.submit(&rogue, vec![], Value::None).unwrap();
    let err = fut.result_timeout(Duration::from_secs(10)).unwrap_err();
    assert!(matches!(err, GcxError::Forbidden(m) if m.contains("allowed list")));
    ex.close();
    mep.stop();
    cloud.shutdown();
}

#[test]
fn uep_reuse_hit_rate_is_visible_in_cloud_metrics() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, admin) = cloud.auth().login("root@site.edu").unwrap();
    let reg = cloud
        .register_endpoint(&admin, "mep", true, AuthPolicy::open(), None)
        .unwrap();
    let mep = MultiUserEndpoint::start(
        cloud.clone(),
        reg.endpoint_id,
        &reg.queue_credential,
        MepSetup::new(
            mapper_for("site.edu"),
            Template::parse(TEMPLATE).unwrap(),
            env_factory(),
        ),
    )
    .unwrap();
    let (_, user) = cloud.auth().login("bob@site.edu").unwrap();
    let ex = Executor::new(cloud.clone(), user, reg.endpoint_id).unwrap();
    ex.set_user_endpoint_config(Value::map([("WORKERS", Value::Int(1))]));
    let f = PyFunction::new("def f():\n    return 0\n");
    let futs: Vec<_> = (0..10)
        .map(|_| ex.submit(&f, vec![], Value::None).unwrap())
        .collect();
    for fut in &futs {
        fut.result_timeout(Duration::from_secs(20)).unwrap();
    }
    assert_eq!(cloud.metrics().counter("mep.uep_spawn_requested").get(), 1);
    assert_eq!(cloud.metrics().counter("mep.uep_reused").get(), 9);
    ex.close();
    mep.stop();
    cloud.shutdown();
}

//! Integration tests for the data-movement paths (§V): the 10 MB cloud
//! limit, S3 offload, ProxyStore pass-by-reference, and Globus Transfer.

use std::sync::Arc;
use std::time::Duration;

use gcx::auth::AuthPolicy;
use gcx::cloud::WebService;
use gcx::core::clock::SystemClock;
use gcx::core::metrics::MetricsRegistry;
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::mq::LinkProfile;
use gcx::proxystore::{
    resolve_value, InMemoryStore, ProxyCache, ProxyExecutor, ProxyPolicy, StoreRegistry,
};
use gcx::sdk::{Executor, PyFunction, ShellFunction};
use gcx::shell::Vfs;
use gcx::transfer::{TransferService, TransferStatus};

struct DataStack {
    cloud: WebService,
    token: gcx::auth::Token,
    ep: gcx::core::ids::EndpointId,
    agent: Option<EndpointAgent>,
    registry: StoreRegistry,
    endpoint_vfs: Vfs,
}

impl DataStack {
    fn new() -> Self {
        let cloud = WebService::with_defaults(SystemClock::shared());
        let (_, token) = cloud.auth().login("data@test.org").unwrap();
        let reg = cloud
            .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
            .unwrap();
        let registry = StoreRegistry::new();
        let cache = ProxyCache::new(16);
        let endpoint_vfs = Vfs::new();
        let mut env = AgentEnv::local(SystemClock::shared());
        env.vfs = endpoint_vfs.clone();
        let reg2 = registry.clone();
        env.arg_transform = Some(Arc::new(move |v: Value| resolve_value(&v, &reg2, &cache)));
        let config = EndpointConfig::from_yaml(
            "engine:\n  type: GlobusComputeEngine\n  workers_per_node: 2\n",
        )
        .unwrap();
        let agent =
            EndpointAgent::start(&cloud, reg.endpoint_id, &reg.queue_credential, &config, env)
                .unwrap();
        Self {
            cloud,
            token,
            ep: reg.endpoint_id,
            agent: Some(agent),
            registry,
            endpoint_vfs,
        }
    }
}

impl Drop for DataStack {
    fn drop(&mut self) {
        if let Some(a) = self.agent.take() {
            a.stop();
        }
        self.cloud.shutdown();
    }
}

#[test]
fn proxystore_roundtrip_with_worker_cache() {
    let stack = DataStack::new();
    let ex = Executor::new(stack.cloud.clone(), stack.token.clone(), stack.ep).unwrap();
    let store = InMemoryStore::new("mem", MetricsRegistry::new());
    let pex = ProxyExecutor::new(
        ex,
        store.clone(),
        stack.registry.clone(),
        ProxyPolicy {
            min_size: 1024,
            evict_after_result: false,
        },
    );
    // The same large object feeds many tasks; the worker cache means the
    // store is read far fewer times than there are tasks.
    let model = Value::Bytes(vec![5u8; 256 * 1024]);
    let f = PyFunction::new("def f(model, x):\n    return len(model) + x\n");
    let futs: Vec<_> = (0..8)
        .map(|i| {
            pex.submit(&f, vec![model.clone(), Value::Int(i)], Value::None)
                .unwrap()
        })
        .collect();
    for (i, fut) in futs.iter().enumerate() {
        assert_eq!(pex.result(fut).unwrap(), Value::Int(256 * 1024 + i as i64));
    }
    pex.close();
}

#[test]
fn proxied_results_avoid_the_payload_limit() {
    // A function whose *result* would be fine but whose argument exceeds
    // 10 MB: through the cloud it is rejected; through ProxyStore it works.
    let stack = DataStack::new();
    let big = Value::Bytes(vec![1u8; 11 * 1024 * 1024]);
    let f = PyFunction::new("def f(b):\n    return len(b)\n");

    // Plain executor: rejected by the 10 MB rule.
    let plain = Executor::new(stack.cloud.clone(), stack.token.clone(), stack.ep).unwrap();
    let fut = plain.submit(&f, vec![big.clone()], Value::None).unwrap();
    assert!(fut.result_timeout(Duration::from_secs(10)).is_err());
    plain.close();

    // ProxyStore executor: the marker is tiny, the task succeeds.
    let ex = Executor::new(stack.cloud.clone(), stack.token.clone(), stack.ep).unwrap();
    let store = InMemoryStore::new("mem", MetricsRegistry::new());
    let pex = ProxyExecutor::new(ex, store, stack.registry.clone(), ProxyPolicy::default());
    let fut = pex.submit(&f, vec![big], Value::None).unwrap();
    assert_eq!(pex.result(&fut).unwrap(), Value::Int(11 * 1024 * 1024));
    pex.close();
}

#[test]
fn transfer_stages_files_for_shell_tasks() {
    let stack = DataStack::new();
    // A "remote" facility holds the input data.
    let remote_fs = Vfs::new();
    remote_fs.mkdir_p("/archive").unwrap();
    let content = "line one\nline two\nline three\n";
    remote_fs
        .write("/archive/input.txt", content.as_bytes())
        .unwrap();

    let transfer = TransferService::new(
        SystemClock::shared(),
        LinkProfile::wan(5, 1000),
        MetricsRegistry::new(),
    );
    transfer
        .register_endpoint("remote#archive", remote_fs, "/archive")
        .unwrap();
    transfer
        .register_endpoint("compute#scratch", stack.endpoint_vfs.clone(), "/scratch")
        .unwrap();

    // Move the file to the compute endpoint, out of band.
    let tid = transfer
        .submit(
            "remote#archive",
            "input.txt",
            "compute#scratch",
            "input.txt",
        )
        .unwrap();
    assert_eq!(
        transfer.wait(tid, Duration::from_secs(10)).unwrap(),
        TransferStatus::Succeeded
    );

    // The task references the *path* — the cloud never carries the bytes.
    let ex = Executor::new(stack.cloud.clone(), stack.token.clone(), stack.ep).unwrap();
    let wc = ShellFunction::new("wc -l {path}");
    let fut = ex
        .submit(
            &wc,
            vec![],
            Value::map([("path", Value::str("/scratch/input.txt"))]),
        )
        .unwrap();
    let sr = fut.shell_result().unwrap();
    assert_eq!(sr.stdout.trim(), "3");
    ex.close();
}

#[test]
fn inline_vs_offload_vs_proxy_byte_accounting() {
    let stack = DataStack::new();
    let metrics = stack.cloud.metrics().clone();
    let f = PyFunction::new("def f(b):\n    return len(b)\n");

    // Small payload: rides the queue inline.
    let ex = Executor::new(stack.cloud.clone(), stack.token.clone(), stack.ep).unwrap();
    metrics.reset_counters();
    let fut = ex
        .submit(&f, vec![Value::Bytes(vec![0u8; 1024])], Value::None)
        .unwrap();
    fut.result_timeout(Duration::from_secs(10)).unwrap();
    let inline_queue_bytes = metrics.counter("mq.bytes_published").get();
    assert!(inline_queue_bytes >= 1024, "inline payload rides the queue");

    // 1 MB payload: interned in the CAS dedup cache, queue carries a
    // content-hash reference instead of the body.
    metrics.reset_counters();
    let fut = ex
        .submit(&f, vec![Value::Bytes(vec![0u8; 1024 * 1024])], Value::None)
        .unwrap();
    fut.result_timeout(Duration::from_secs(10)).unwrap();
    let offload_queue_bytes = metrics.counter("mq.bytes_published").get();
    assert!(
        offload_queue_bytes < 64 * 1024,
        "queue carries a reference: {offload_queue_bytes}"
    );
    assert!(
        metrics.counter("blob.cas_misses").get() >= 1,
        "the large payload must be interned in the CAS cache"
    );
    assert!(
        metrics.counter("payload.bytes_moved").get() < 64 * 1024,
        "the body must not move through the queue"
    );
    ex.close();

    // Proxied payload: neither the queue nor S3 sees the body.
    let ex = Executor::new(stack.cloud.clone(), stack.token.clone(), stack.ep).unwrap();
    let store = InMemoryStore::new("mem", MetricsRegistry::new());
    let pex = ProxyExecutor::new(
        ex,
        store,
        stack.registry.clone(),
        ProxyPolicy {
            min_size: 10 * 1024,
            evict_after_result: false,
        },
    );
    metrics.reset_counters();
    let fut = pex
        .submit(&f, vec![Value::Bytes(vec![0u8; 1024 * 1024])], Value::None)
        .unwrap();
    assert_eq!(pex.result(&fut).unwrap(), Value::Int(1024 * 1024));
    assert!(metrics.counter("mq.bytes_published").get() < 10 * 1024);
    assert_eq!(metrics.counter("s3.bytes_put").get(), 0);
    pex.close();
}

//! Chaos tests: scripted failures injected into the full SDK → cloud →
//! broker → endpoint stack, checking the recovery machinery end to end.
//!
//! The acceptance bar for each scenario is the same: every submitted task
//! reaches a terminal state (no hangs, no lost tasks) and the SDK observes
//! each result exactly once (no duplicated side effects).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcx::auth::{AuthPolicy, AuthService};
use gcx::batch::{
    BatchScheduler, ClusterSpec, PartitionSpec, ResourceFaultPlan, ResourceFaultRule,
};
use gcx::cloud::{CloudConfig, EndpointHealth, WebService};
use gcx::core::clock::{SharedClock, SystemClock, VirtualClock};
use gcx::core::error::GcxError;
use gcx::core::metrics::MetricsRegistry;
use gcx::core::respec::ResourceSpec;
use gcx::core::retry::RetryPolicy;
use gcx::core::shellres::ShellResult;
use gcx::core::task::TaskResult;
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::mq::{Broker, FaultDirection, FaultPlan, FaultRule, LinkProfile};
use gcx::sdk::{Executor, ExecutorConfig, MpiFunction, PyFunction, ShellFunction, TaskFuture};

/// The engine the generic chaos scenarios run on: `GCX_CHAOS_ENGINE` selects
/// `GlobusComputeEngine` (default), `GlobusMPIEngine`, or `ThreadEngine` —
/// all three share the execution core, so the recovery acceptance bar
/// (100% completion, exactly-once observation) is engine-independent and CI
/// runs the seed matrix across every engine. The resource-fault scenario
/// pins its own engines: it scripts batch-layer faults that need specific
/// provider-backed topologies.
fn engine_yaml() -> &'static str {
    match std::env::var("GCX_CHAOS_ENGINE").as_deref() {
        Ok("ThreadEngine") => "engine:\n  type: ThreadEngine\n  workers: 2\n",
        Ok("GlobusMPIEngine") => "engine:\n  type: GlobusMPIEngine\n  nodes_per_block: 2\n",
        _ => "engine:\n  type: GlobusComputeEngine\n  workers_per_node: 2\n",
    }
}

fn virtual_service(heartbeat_timeout_ms: u64) -> (Arc<VirtualClock>, WebService) {
    let vclock = VirtualClock::new();
    let clock: SharedClock = vclock.clone();
    let cfg = CloudConfig {
        heartbeat_timeout_ms,
        ..CloudConfig::default()
    };
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let svc = WebService::new(cfg, AuthService::new(clock.clone()), broker, clock);
    (vclock, svc)
}

/// Count every resolution the SDK observes; a duplicate delivery that
/// re-resolved a future would be visible as `resolutions > futures`.
fn observe(futures: &[TaskFuture]) -> Arc<AtomicUsize> {
    let resolutions = Arc::new(AtomicUsize::new(0));
    for f in futures {
        let r = Arc::clone(&resolutions);
        f.on_done(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    resolutions
}

/// Assert the SDK observed exactly `expect` resolutions. Completion
/// callbacks fire just after `result()` waiters wake, so allow a short
/// settling window before the count is final.
fn assert_observed_exactly(resolutions: &AtomicUsize, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while resolutions.load(Ordering::SeqCst) < expect && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        resolutions.load(Ordering::SeqCst),
        expect,
        "the SDK must observe each result exactly once"
    );
}

/// The headline scenario: an endpoint agent dies mid-workload — after
/// completing some tasks, after publishing-but-not-acking one (the classic
/// duplicate window), and while holding several deliveries it will never
/// finish. The liveness monitor declares it offline and requeues its
/// in-flight tasks; a replacement agent connects and serves the rest. All
/// timing runs on a virtual clock, so the failure point and the recovery
/// sweep are deterministic.
#[test]
fn killed_agent_mid_workload_tasks_reroute_and_complete() {
    const TASKS: i64 = 12;
    let (vclock, svc) = virtual_service(1_000);
    let (_, token) = svc.auth().login("chaos@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "doomed", false, AuthPolicy::open(), None)
        .unwrap();

    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(3, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let double = PyFunction::new("def f(x):\n    return x * 2\n");
    let futures: Vec<TaskFuture> = (0..TASKS)
        .map(|i| {
            ex.submit(&double, vec![Value::Int(i)], Value::None)
                .unwrap()
        })
        .collect();
    let resolutions = observe(&futures);

    // "Agent A": a scripted endpoint session that pulls six deliveries,
    // finishes two cleanly, publishes a third result but crashes before the
    // ack, and hangs holding the other three. The session is kept alive —
    // a hung process does not return its deliveries — so only the liveness
    // sweep can recover them.
    let session_a = svc
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let mut pulled = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while pulled.len() < 6 {
        assert!(Instant::now() < deadline, "agent A never saw its 6 tasks");
        if let Some(d) = session_a.next_task(Duration::from_millis(20)).unwrap() {
            pulled.push(d);
        }
    }
    let answer = |spec: &gcx::core::task::TaskSpec| {
        let (args, _) = spec.decode_args().unwrap();
        TaskResult::ok(Value::Int(args[0].as_int().unwrap() * 2))
    };
    for (spec, tag) in &pulled[..2] {
        session_a
            .publish_result(spec.task_id, &answer(spec))
            .unwrap();
        session_a.ack_task(*tag).unwrap();
    }
    session_a
        .publish_result(pulled[2].0.task_id, &answer(&pulled[2].0))
        .unwrap();
    // ...and here agent A stops making progress forever.

    // The heartbeat goes stale; the liveness sweep declares the endpoint
    // offline and requeues its four unacked deliveries.
    vclock.advance(1_500);
    assert_eq!(
        svc.check_liveness(),
        1,
        "stale endpoint must be declared offline"
    );
    assert_eq!(svc.metrics().counter("cloud.endpoints_offline").get(), 1);
    assert_eq!(
        svc.metrics().counter("cloud.retries").get(),
        4,
        "3 unprocessed + 1 published-but-unacked deliveries requeue"
    );

    // "Agent B": a real replacement agent reconnects and serves everything
    // still queued — the six untouched tasks plus the four requeued ones.
    let config = EndpointConfig::from_yaml(engine_yaml()).unwrap();
    let agent_b = EndpointAgent::start(
        &svc,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(vclock.clone()),
    )
    .unwrap();

    for (i, f) in futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(20)).unwrap(),
            Value::Int(i as i64 * 2),
            "task {i} must complete with the right answer"
        );
    }
    assert_eq!(ex.inflight(), 0);
    assert_observed_exactly(&resolutions, TASKS as usize);
    // The published-but-unacked task ran twice; the cloud's idempotent
    // result processing suppressed the duplicate before the SDK saw it.
    assert_eq!(
        svc.metrics()
            .counter("cloud.duplicate_results_dropped")
            .get(),
        1
    );

    ex.close();
    agent_b.stop();
    drop(session_a);
    svc.shutdown();
}

/// A seeded fault plan drops task deliveries and duplicates result
/// publishes while a real agent serves a workload. Dropped deliveries are
/// redelivered (and dead-lettered tasks resubmitted by the executor);
/// duplicated results are deduplicated by the cloud. Everything completes,
/// nothing is observed twice.
#[test]
fn workload_completes_under_message_drops_and_duplicates() {
    const TASKS: i64 = 40;
    let svc = WebService::with_defaults(SystemClock::shared());
    let (_, token) = svc.auth().login("faulty@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "lossy", false, AuthPolicy::open(), None)
        .unwrap();
    svc.broker().set_fault_plan(Some(
        FaultPlan::new(0xC0FFEE)
            .with_rule(FaultRule::drop("tasks.", FaultDirection::Deliver, 0.15))
            .with_rule(FaultRule::duplicate("results.", 0.20)),
    ));

    let config = EndpointConfig::from_yaml(engine_yaml()).unwrap();
    let agent = EndpointAgent::start(
        &svc,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(4, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();

    let square = PyFunction::new("def f(x):\n    return x * x\n");
    let futures: Vec<TaskFuture> = (0..TASKS)
        .map(|i| {
            ex.submit(&square, vec![Value::Int(i)], Value::None)
                .unwrap()
        })
        .collect();
    let resolutions = observe(&futures);

    for (i, f) in futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(30)).unwrap(),
            Value::Int((i * i) as i64),
            "task {i} must survive the fault plan"
        );
    }
    assert_observed_exactly(&resolutions, TASKS as usize);
    assert!(
        svc.metrics().counter("mq.dropped").get() > 0,
        "the fault plan must actually have dropped deliveries"
    );
    assert!(
        svc.metrics().counter("mq.duplicated").get() > 0,
        "the fault plan must actually have duplicated results"
    );
    ex.close();
    agent.stop();
    svc.shutdown();
}

/// The chaos seed: `GCX_CHAOS_SEED` (decimal or `0x`-hex) when set, a fixed
/// default otherwise. CI runs the suite under several fixed seeds; the
/// probabilistic fault rules draw differently under each, so the recovery
/// paths are exercised from different interleavings while the acceptance
/// bar (100% completion, exactly-once) stays seed-independent.
fn chaos_seed() -> u64 {
    std::env::var("GCX_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0xC4A0_5EED)
}

/// The resource-fault headline scenario (ISSUE 2): a three-partition site
/// runs a mixed plain/Shell/MPI workload while the batch layer injects
/// scripted resource faults —
///
/// - a node crash at t=2 s inside the `mpi` partition, killing a member of
///   an **active MPI partition** (the 2-node application is mid-run);
/// - a whole-job preemption of the `cpu` block at t=1.5 s with four pyfn
///   tasks in flight, plus a seed-dependent chance of the replacement block
///   being preempted again (driving the engine's retry budget into the
///   SDK's resubmission path);
/// - a walltime expiry on the `short` partition (2 s block walltime) under
///   a 60 s shell task.
///
/// Every layer above must recover: the MPI engine repairs its partition
/// table and re-dispatches the lost application, htex re-provisions blocks
/// and requeues stolen tasks, the walltime-killed shell task resolves with
/// return code 124 (never hangs), and the cloud sees the capacity loss as
/// *degraded* — not dead. The workload reaches 100% completion with each
/// result observed exactly once and no node ever double-allocated.
#[test]
fn node_crash_and_preemption_mid_mixed_workload_all_complete() {
    let (vclock, svc) = virtual_service(600_000);
    let clock: SharedClock = vclock.clone();
    let sched = BatchScheduler::new(
        ClusterSpec {
            name: "chaos-site".into(),
            partitions: vec![
                PartitionSpec::sized("cpu", "cn", 2, 24 * 3600 * 1000),
                PartitionSpec::sized("mpi", "mn", 2, 24 * 3600 * 1000),
                PartitionSpec::sized("short", "sn", 1, 24 * 3600 * 1000),
            ],
        },
        clock.clone(),
    );
    // Fire times are relative to each job's start; `during` windows gate on
    // the absolute fire time, so replacement blocks (which start later) are
    // spared the deterministic rules and recovery can make progress.
    sched.set_fault_plan(Some(
        ResourceFaultPlan::new(chaos_seed())
            .with_rule(ResourceFaultRule::node_crash("mpi", 1.0, 2_000, 3_000).during(0, 5_000))
            .with_rule(ResourceFaultRule::preempt("cpu", 1.0, 1_500).during(0, 2_000))
            .with_rule(ResourceFaultRule::preempt("cpu", 0.4, 1_200).during(2_500, 6_000)),
    ));

    let (_, token) = svc.auth().login("resource-chaos@test.org").unwrap();
    let mut agents = Vec::new();
    let mut endpoints = Vec::new();
    let mut engine_metrics = Vec::new();
    for (name, yaml) in [
        (
            "cpu-ep",
            "engine:\n  type: GlobusComputeEngine\n  nodes_per_block: 2\n  workers_per_node: 2\n  provider:\n    type: SlurmProvider\n    partition: cpu\n    walltime: \"00:00:30\"\n",
        ),
        (
            "mpi-ep",
            "engine:\n  type: GlobusMPIEngine\n  nodes_per_block: 2\n  provider:\n    type: SlurmProvider\n    partition: mpi\n    walltime: \"00:01:00\"\n",
        ),
        (
            "short-ep",
            "engine:\n  type: GlobusComputeEngine\n  nodes_per_block: 1\n  workers_per_node: 1\n  provider:\n    type: SlurmProvider\n    partition: short\n    walltime: \"00:00:02\"\n",
        ),
    ] {
        let reg = svc
            .register_endpoint(&token, name, false, AuthPolicy::open(), None)
            .unwrap();
        let mut env = AgentEnv::local(clock.clone());
        env.scheduler = Some(sched.clone());
        engine_metrics.push(env.metrics.clone());
        let agent =
            EndpointAgent::start(&svc, reg.endpoint_id, &reg.queue_credential, &config_of(yaml), env)
                .unwrap();
        agents.push(agent);
        endpoints.push(reg.endpoint_id);
    }
    let (ep_cpu, ep_mpi, ep_short) = (endpoints[0], endpoints[1], endpoints[2]);

    let executor = |ep, attempts| {
        Executor::with_config(
            svc.clone(),
            token.clone(),
            ep,
            ExecutorConfig {
                retry: RetryPolicy::fixed(attempts, 5),
                ..ExecutorConfig::default()
            },
        )
        .unwrap()
    };
    let ex_cpu = executor(ep_cpu, 5);
    let ex_mpi = executor(ep_mpi, 3);
    let ex_short = executor(ep_short, 3);

    // The workload: 6 pyfn tasks (4 slots on the cpu block, mid-sleep when
    // the preemption hits), one 60 s shell command doomed by the 2 s block
    // walltime, and 3 MPI applications — the 2-node one is running when its
    // member node crashes; the 1-rank ones fit the surviving node.
    let double = PyFunction::new("def f(x):\n    sleep(3)\n    return x * 2\n");
    let py_futures: Vec<TaskFuture> = (0..6)
        .map(|i| {
            ex_cpu
                .submit(&double, vec![Value::Int(i)], Value::None)
                .unwrap()
        })
        .collect();
    let long_shell = ShellFunction::new("sleep 60");
    let shell_future = ex_short.submit(&long_shell, vec![], Value::None).unwrap();
    ex_mpi.set_resource_specification(ResourceSpec::nodes_ranks(2, 2));
    let mpi_big = MpiFunction::new("sleep 4");
    let big_future = ex_mpi.submit(&mpi_big, vec![], Value::None).unwrap();
    ex_mpi.set_resource_specification(ResourceSpec::nodes_ranks(1, 1));
    let mpi_small = MpiFunction::new("hostname");
    let small_futures: Vec<TaskFuture> = (0..2)
        .map(|_| ex_mpi.submit(&mpi_small, vec![], Value::None).unwrap())
        .collect();

    let mut all: Vec<TaskFuture> = py_futures.clone();
    all.push(shell_future.clone());
    all.push(big_future.clone());
    all.extend(small_futures.iter().cloned());
    let resolutions = observe(&all);

    // Quiesce before the first tick so every first block starts at t=0 and
    // the scripted fire times are deterministic: 4 pyfn workers + the shell
    // task + the 2-node MPI application's 2 ranks = 7 virtual sleepers.
    // (The 1-rank `hostname` applications never sleep — they are queued
    // behind the 2-node one, which holds the whole block.)
    vclock.wait_for_sleepers(7);

    // Drive virtual time from a helper thread while the main thread waits
    // on the futures, exactly like a wall clock that no task can stall.
    let driving = Arc::new(AtomicBool::new(true));
    let driver = {
        let vclock = vclock.clone();
        let driving = Arc::clone(&driving);
        std::thread::spawn(move || {
            while driving.load(Ordering::SeqCst) {
                vclock.advance(100);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    for (i, f) in py_futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(60)).unwrap(),
            Value::Int(i as i64 * 2),
            "pyfn task {i} must survive the preemption(s)"
        );
    }
    let shell_v = shell_future
        .result_timeout(Duration::from_secs(60))
        .unwrap();
    let shell_res = ShellResult::from_value(&shell_v).unwrap();
    assert_eq!(
        shell_res.returncode, 124,
        "walltime-killed shell task must report code 124, got {shell_res:?}"
    );
    assert!(
        shell_res.stderr.contains("walltime"),
        "stderr must say why: {:?}",
        shell_res.stderr
    );
    let big_v = big_future.result_timeout(Duration::from_secs(60)).unwrap();
    assert_eq!(
        ShellResult::from_value(&big_v).unwrap().returncode,
        0,
        "the re-dispatched MPI application must complete cleanly"
    );
    for f in &small_futures {
        let v = f.result_timeout(Duration::from_secs(60)).unwrap();
        let sr = ShellResult::from_value(&v).unwrap();
        assert_eq!(sr.returncode, 0);
        assert_eq!(sr.stdout.lines().count(), 1, "1 rank → 1 hostname line");
    }
    assert_observed_exactly(&resolutions, all.len());

    // The faults actually fired (not a vacuous pass) and the scheduler's
    // node accounting survived them: census conservation per partition, the
    // crashed node recovered, and nothing is double-allocated (the census
    // would not balance if a node were in two jobs).
    let stats = sched.fault_stats();
    assert!(stats.nodes_crashed >= 1, "no node crash fired: {stats:?}");
    assert!(stats.jobs_preempted >= 1, "no preemption fired: {stats:?}");
    assert!(
        stats.jobs_timed_out >= 1,
        "no walltime expiry fired: {stats:?}"
    );
    assert!(stats.nodes_recovered >= 1, "crashed node never came back");
    for part in ["cpu", "mpi", "short"] {
        let census = sched.node_census(part).unwrap();
        assert_eq!(
            census.free + census.down + census.busy,
            census.total,
            "census conservation violated on {part}: {census:?}"
        );
    }
    assert_eq!(sched.node_census("mpi").unwrap().down, 0);

    // The engines recorded their recovery work on this site.
    let mpi_metrics = &engine_metrics[1];
    assert!(
        mpi_metrics.counter("mpi.partitions_repaired").get() >= 1,
        "the MPI engine must have repaired its partition table"
    );
    assert!(
        mpi_metrics.counter("mpi.tasks_redispatched").get() >= 1,
        "the lost MPI application must have been re-dispatched"
    );
    assert!(
        engine_metrics[0].counter("htex.tasks_redispatched").get() >= 1,
        "htex must have requeued the tasks stolen from the preempted block"
    );

    // The cloud heard about every capacity loss, and tells "degraded,
    // recovering" apart from "dead": the cpu and mpi endpoints finished
    // their recoveries (re-provisioned blocks), while the short endpoint —
    // whose queue drained when the walltime kill resolved its only task —
    // has no reason to re-provision and stays degraded. Event pumps run
    // just behind result resolution, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reports = svc.metrics().counter("cloud.block_loss_reports").get();
        let cpu_h = svc.endpoint_health(ep_cpu).unwrap();
        let mpi_h = svc.endpoint_health(ep_mpi).unwrap();
        let short_h = svc.endpoint_health(ep_short).unwrap();
        if reports >= 3
            && cpu_h == EndpointHealth::Online
            && mpi_h == EndpointHealth::Online
            && short_h == EndpointHealth::Degraded
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cloud never converged: reports={reports} cpu={cpu_h:?} mpi={mpi_h:?} short={short_h:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    ex_cpu.close();
    ex_mpi.close();
    ex_short.close();
    for agent in agents {
        agent.stop();
    }
    driving.store(false, Ordering::SeqCst);
    driver.join().unwrap();
    svc.shutdown();
}

fn config_of(yaml: &str) -> EndpointConfig {
    EndpointConfig::from_yaml(yaml).unwrap()
}

/// Delivery-budget exhaustion surfaces as a typed, retryable failure — and
/// once the client-side budget is spent too, as `RetriesExhausted` — rather
/// than a hang. A nack-everything endpoint guarantees every delivery fails.
#[test]
fn poisoned_endpoint_yields_typed_terminal_errors_not_hangs() {
    let svc = WebService::with_defaults(SystemClock::shared());
    let (_, token) = svc.auth().login("poison@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "nacker", false, AuthPolicy::open(), None)
        .unwrap();
    let session = svc
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let nacker = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(Some((_, tag))) = session.next_task(Duration::from_millis(5)) {
                    let _ = session.nack_task(tag);
                }
            }
        })
    };

    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(2, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let f = PyFunction::new("def f():\n    return 1\n");
    let futures: Vec<TaskFuture> = (0..3)
        .map(|_| ex.submit(&f, vec![], Value::None).unwrap())
        .collect();
    for fut in &futures {
        let err = fut.result_timeout(Duration::from_secs(15)).unwrap_err();
        assert!(
            matches!(err, GcxError::RetriesExhausted { attempts: 2, .. }),
            "expected RetriesExhausted, got {err:?}"
        );
    }
    assert!(svc.metrics().counter("cloud.tasks_dead_lettered").get() >= 3);
    assert_eq!(svc.metrics().counter("sdk.tasks_resubmitted").get(), 3);
    stop.store(true, Ordering::SeqCst);
    nacker.join().unwrap();
    ex.close();
    svc.shutdown();
}

/// A task whose node dies under it (modeled as a doomed endpoint session
/// nacking its delivery to death) is dead-lettered and resubmitted by the
/// SDK — and the whole episode must land in ONE trace: the resubmission's
/// spans are children of the original trace's root (linked via a `retry`
/// span), not a fresh unlinked trace, and no span is left orphaned.
#[test]
fn retried_task_keeps_one_linked_trace_with_no_orphans() {
    let svc = WebService::with_defaults(SystemClock::shared());
    let tracer = svc.metrics().tracer();
    assert!(tracer.enabled(), "tracing must be on by default");
    let (_, token) = svc.auth().login("trace-chaos@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "crashy", false, AuthPolicy::open(), None)
        .unwrap();

    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(3, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let f = PyFunction::new("def f(x):\n    return x + 1\n");
    let fut = ex.submit(&f, vec![Value::Int(41)], Value::None).unwrap();

    // The doomed "node": nack the delivery to death (the default delivery
    // budget is 3), which dead-letters the task and makes the SDK resubmit
    // it under a fresh task id but the same trace context.
    let doomed = svc
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let mut nacks = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while nacks < 3 {
        assert!(
            Instant::now() < deadline,
            "doomed session never got 3 nacks in"
        );
        if let Some((_, tag)) = doomed.next_task(Duration::from_millis(10)).unwrap() {
            doomed.nack_task(tag).unwrap();
            nacks += 1;
        }
    }

    // A healthy agent — sharing the service registry so its engine-side
    // `worker` spans land in the same trace collector — serves the retry.
    let config = EndpointConfig::from_yaml(engine_yaml()).unwrap();
    let mut env = AgentEnv::local(SystemClock::shared());
    env.metrics = svc.metrics().clone();
    let agent =
        EndpointAgent::start(&svc, reg.endpoint_id, &reg.queue_credential, &config, env).unwrap();
    assert_eq!(
        fut.result_timeout(Duration::from_secs(20)).unwrap(),
        Value::Int(42)
    );
    assert_eq!(svc.metrics().counter("sdk.tasks_resubmitted").get(), 1);

    let traces = tracer.traces();
    assert_eq!(traces.len(), 1, "one submission → one trace, even retried");
    let trace = &traces[0];
    let retries: Vec<_> = trace.spans_named("retry").collect();
    assert_eq!(retries.len(), 1, "one dead-letter → one retry span");
    assert_eq!(
        retries[0].parent,
        Some(trace.root),
        "the retry span must be a child of the original root"
    );
    assert_eq!(
        trace.spans_named("submit").count(),
        2,
        "original submission + resubmission, both in the same trace"
    );
    assert!(
        trace.spans_named("worker").count() >= 1,
        "the serving engine's worker span must join the trace"
    );
    assert!(
        trace.orphan_spans().is_empty(),
        "every span must resolve its parent within the trace"
    );

    ex.close();
    agent.stop();
    drop(doomed);
    svc.shutdown();
}

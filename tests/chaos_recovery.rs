//! Chaos tests: scripted failures injected into the full SDK → cloud →
//! broker → endpoint stack, checking the recovery machinery end to end.
//!
//! The acceptance bar for each scenario is the same: every submitted task
//! reaches a terminal state (no hangs, no lost tasks) and the SDK observes
//! each result exactly once (no duplicated side effects).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcx::auth::{AuthPolicy, AuthService};
use gcx::cloud::{CloudConfig, WebService};
use gcx::core::clock::{SharedClock, SystemClock, VirtualClock};
use gcx::core::error::GcxError;
use gcx::core::metrics::MetricsRegistry;
use gcx::core::retry::RetryPolicy;
use gcx::core::task::TaskResult;
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::mq::{Broker, FaultDirection, FaultPlan, FaultRule, LinkProfile};
use gcx::sdk::{Executor, ExecutorConfig, PyFunction, TaskFuture};

const ENGINE_YAML: &str = "engine:\n  type: GlobusComputeEngine\n  workers_per_node: 2\n";

fn virtual_service(heartbeat_timeout_ms: u64) -> (Arc<VirtualClock>, WebService) {
    let vclock = VirtualClock::new();
    let clock: SharedClock = vclock.clone();
    let cfg = CloudConfig {
        heartbeat_timeout_ms,
        ..CloudConfig::default()
    };
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let svc = WebService::new(cfg, AuthService::new(clock.clone()), broker, clock);
    (vclock, svc)
}

/// Count every resolution the SDK observes; a duplicate delivery that
/// re-resolved a future would be visible as `resolutions > futures`.
fn observe(futures: &[TaskFuture]) -> Arc<AtomicUsize> {
    let resolutions = Arc::new(AtomicUsize::new(0));
    for f in futures {
        let r = Arc::clone(&resolutions);
        f.on_done(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    resolutions
}

/// Assert the SDK observed exactly `expect` resolutions. Completion
/// callbacks fire just after `result()` waiters wake, so allow a short
/// settling window before the count is final.
fn assert_observed_exactly(resolutions: &AtomicUsize, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while resolutions.load(Ordering::SeqCst) < expect && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        resolutions.load(Ordering::SeqCst),
        expect,
        "the SDK must observe each result exactly once"
    );
}

/// The headline scenario: an endpoint agent dies mid-workload — after
/// completing some tasks, after publishing-but-not-acking one (the classic
/// duplicate window), and while holding several deliveries it will never
/// finish. The liveness monitor declares it offline and requeues its
/// in-flight tasks; a replacement agent connects and serves the rest. All
/// timing runs on a virtual clock, so the failure point and the recovery
/// sweep are deterministic.
#[test]
fn killed_agent_mid_workload_tasks_reroute_and_complete() {
    const TASKS: i64 = 12;
    let (vclock, svc) = virtual_service(1_000);
    let (_, token) = svc.auth().login("chaos@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "doomed", false, AuthPolicy::open(), None)
        .unwrap();

    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(3, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let double = PyFunction::new("def f(x):\n    return x * 2\n");
    let futures: Vec<TaskFuture> = (0..TASKS)
        .map(|i| {
            ex.submit(&double, vec![Value::Int(i)], Value::None)
                .unwrap()
        })
        .collect();
    let resolutions = observe(&futures);

    // "Agent A": a scripted endpoint session that pulls six deliveries,
    // finishes two cleanly, publishes a third result but crashes before the
    // ack, and hangs holding the other three. The session is kept alive —
    // a hung process does not return its deliveries — so only the liveness
    // sweep can recover them.
    let session_a = svc
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let mut pulled = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while pulled.len() < 6 {
        assert!(Instant::now() < deadline, "agent A never saw its 6 tasks");
        if let Some(d) = session_a.next_task(Duration::from_millis(20)).unwrap() {
            pulled.push(d);
        }
    }
    let answer = |spec: &gcx::core::task::TaskSpec| {
        TaskResult::Ok(Value::Int(spec.args[0].as_int().unwrap() * 2))
    };
    for (spec, tag) in &pulled[..2] {
        session_a
            .publish_result(spec.task_id, &answer(spec))
            .unwrap();
        session_a.ack_task(*tag).unwrap();
    }
    session_a
        .publish_result(pulled[2].0.task_id, &answer(&pulled[2].0))
        .unwrap();
    // ...and here agent A stops making progress forever.

    // The heartbeat goes stale; the liveness sweep declares the endpoint
    // offline and requeues its four unacked deliveries.
    vclock.advance(1_500);
    assert_eq!(
        svc.check_liveness(),
        1,
        "stale endpoint must be declared offline"
    );
    assert_eq!(svc.metrics().counter("cloud.endpoints_offline").get(), 1);
    assert_eq!(
        svc.metrics().counter("cloud.retries").get(),
        4,
        "3 unprocessed + 1 published-but-unacked deliveries requeue"
    );

    // "Agent B": a real replacement agent reconnects and serves everything
    // still queued — the six untouched tasks plus the four requeued ones.
    let config = EndpointConfig::from_yaml(ENGINE_YAML).unwrap();
    let agent_b = EndpointAgent::start(
        &svc,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(vclock.clone()),
    )
    .unwrap();

    for (i, f) in futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(20)).unwrap(),
            Value::Int(i as i64 * 2),
            "task {i} must complete with the right answer"
        );
    }
    assert_eq!(ex.inflight(), 0);
    assert_observed_exactly(&resolutions, TASKS as usize);
    // The published-but-unacked task ran twice; the cloud's idempotent
    // result processing suppressed the duplicate before the SDK saw it.
    assert_eq!(
        svc.metrics()
            .counter("cloud.duplicate_results_dropped")
            .get(),
        1
    );

    ex.close();
    agent_b.stop();
    drop(session_a);
    svc.shutdown();
}

/// A seeded fault plan drops task deliveries and duplicates result
/// publishes while a real agent serves a workload. Dropped deliveries are
/// redelivered (and dead-lettered tasks resubmitted by the executor);
/// duplicated results are deduplicated by the cloud. Everything completes,
/// nothing is observed twice.
#[test]
fn workload_completes_under_message_drops_and_duplicates() {
    const TASKS: i64 = 40;
    let svc = WebService::with_defaults(SystemClock::shared());
    let (_, token) = svc.auth().login("faulty@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "lossy", false, AuthPolicy::open(), None)
        .unwrap();
    svc.broker().set_fault_plan(Some(
        FaultPlan::new(0xC0FFEE)
            .with_rule(FaultRule::drop("tasks.", FaultDirection::Deliver, 0.15))
            .with_rule(FaultRule::duplicate("results.", 0.20)),
    ));

    let config = EndpointConfig::from_yaml(ENGINE_YAML).unwrap();
    let agent = EndpointAgent::start(
        &svc,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(4, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();

    let square = PyFunction::new("def f(x):\n    return x * x\n");
    let futures: Vec<TaskFuture> = (0..TASKS)
        .map(|i| {
            ex.submit(&square, vec![Value::Int(i)], Value::None)
                .unwrap()
        })
        .collect();
    let resolutions = observe(&futures);

    for (i, f) in futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(30)).unwrap(),
            Value::Int((i * i) as i64),
            "task {i} must survive the fault plan"
        );
    }
    assert_observed_exactly(&resolutions, TASKS as usize);
    assert!(
        svc.metrics().counter("mq.dropped").get() > 0,
        "the fault plan must actually have dropped deliveries"
    );
    assert!(
        svc.metrics().counter("mq.duplicated").get() > 0,
        "the fault plan must actually have duplicated results"
    );
    ex.close();
    agent.stop();
    svc.shutdown();
}

/// Delivery-budget exhaustion surfaces as a typed, retryable failure — and
/// once the client-side budget is spent too, as `RetriesExhausted` — rather
/// than a hang. A nack-everything endpoint guarantees every delivery fails.
#[test]
fn poisoned_endpoint_yields_typed_terminal_errors_not_hangs() {
    let svc = WebService::with_defaults(SystemClock::shared());
    let (_, token) = svc.auth().login("poison@test.org").unwrap();
    let reg = svc
        .register_endpoint(&token, "nacker", false, AuthPolicy::open(), None)
        .unwrap();
    let session = svc
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let nacker = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(Some((_, tag))) = session.next_task(Duration::from_millis(5)) {
                    let _ = session.nack_task(tag);
                }
            }
        })
    };

    let ex = Executor::with_config(
        svc.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(2, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let f = PyFunction::new("def f():\n    return 1\n");
    let futures: Vec<TaskFuture> = (0..3)
        .map(|_| ex.submit(&f, vec![], Value::None).unwrap())
        .collect();
    for fut in &futures {
        let err = fut.result_timeout(Duration::from_secs(15)).unwrap_err();
        assert!(
            matches!(err, GcxError::RetriesExhausted { attempts: 2, .. }),
            "expected RetriesExhausted, got {err:?}"
        );
    }
    assert!(svc.metrics().counter("cloud.tasks_dead_lettered").get() >= 3);
    assert_eq!(svc.metrics().counter("sdk.tasks_resubmitted").get(), 3);
    stop.store(true, Ordering::SeqCst);
    nacker.join().unwrap();
    ex.close();
    svc.shutdown();
}

//! Integration tests for best-effort task cancellation.

use std::time::Duration;

use gcx::auth::AuthPolicy;
use gcx::cloud::WebService;
use gcx::core::clock::SystemClock;
use gcx::core::error::GcxError;
use gcx::core::task::{TaskResult, TaskState};
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::sdk::{CancelOutcome, Client, Executor, PyFunction};

#[test]
fn cancel_buffered_task_never_executes() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("cancel@test.org").unwrap();
    let client = Client::new(cloud.clone(), token.clone());
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    // A side-effecting function: if it ever ran, the counter would move.
    let fid = client
        .register_function(&PyFunction::new("def f():\n    return 'executed'\n"))
        .unwrap();

    // Submit while the endpoint is offline, then cancel.
    let task = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    assert_eq!(client.cancel(task).unwrap(), CancelOutcome::Cancelled);
    let (state, result) = client.task_status(task).unwrap();
    assert_eq!(state, TaskState::Cancelled);
    assert!(matches!(result, Some(TaskResult::Err(m)) if m.contains("cancelled")));

    // Now the agent comes online: it must skip the cancelled task.
    let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();

    // Submit a sentinel task and wait for it: once it completes we know the
    // agent has drained past the cancelled task.
    let sentinel = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    client
        .get_result(sentinel, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    let (state, _) = client.task_status(task).unwrap();
    assert_eq!(
        state,
        TaskState::Cancelled,
        "cancelled task stays cancelled"
    );
    // The engine executed exactly one task (the sentinel): the cancelled one
    // was acked without dispatch, visible via the dispatch metric being the
    // cloud-side count of completed results.
    assert_eq!(cloud.metrics().counter("cloud.results_processed").get(), 1);

    agent.stop();
    cloud.shutdown();
}

#[test]
fn cancel_completed_task_is_typed_noop() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("late@test.org").unwrap();
    let client = Client::new(cloud.clone(), token.clone());
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let fid = client
        .register_function(&PyFunction::new("def f():\n    return 1\n"))
        .unwrap();
    let task = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    let landed = client
        .get_result(task, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    // Cancelling a finished task is a typed no-op: the caller learns which
    // terminal state it raced against, and the record is untouched.
    assert_eq!(
        client.cancel(task).unwrap(),
        CancelOutcome::AlreadyTerminal(TaskState::Success)
    );
    let (state, result) = client.task_status(task).unwrap();
    assert_eq!(
        state,
        TaskState::Success,
        "cancel must not overwrite a result"
    );
    assert_eq!(result.and_then(|r| r.ok_value()), Some(landed));
    agent.stop();
    cloud.shutdown();
}

/// Cancel a task *while it is executing* on the engine. The cloud record
/// flips to Cancelled immediately; the function keeps running on the
/// endpoint (best-effort cancellation does not reach into a live worker),
/// and its late result must be dropped as a duplicate rather than
/// resurrecting the cancelled task.
fn cancel_running_task_on(engine_yaml: &str, user: &str) {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login(user).unwrap();
    let client = Client::new(cloud.clone(), token.clone());
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml(engine_yaml).unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let fid = client
        .register_function(&PyFunction::new(
            "def f():\n    sleep(0.3)\n    return 'finished'\n",
        ))
        .unwrap();
    let task = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();

    // Wait until the engine reports the task Running, then cancel it
    // mid-execution.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (state, _) = client.task_status(task).unwrap();
        if state == TaskState::Running {
            break;
        }
        assert!(
            !state.is_terminal(),
            "task finished before it was cancelled"
        );
        assert!(std::time::Instant::now() < deadline, "task never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(client.cancel(task).unwrap(), CancelOutcome::Cancelled);
    let (state, result) = client.task_status(task).unwrap();
    assert_eq!(state, TaskState::Cancelled);
    assert!(matches!(result, Some(TaskResult::Err(m)) if m.contains("cancelled")));

    // The worker finishes anyway; its late result is swallowed by the
    // terminal record.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cloud
        .metrics()
        .counter("cloud.duplicate_results_dropped")
        .get()
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "late result never reached the cloud"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let (state, result) = client.task_status(task).unwrap();
    assert_eq!(
        state,
        TaskState::Cancelled,
        "late result must not resurrect"
    );
    assert!(matches!(result, Some(TaskResult::Err(m)) if m.contains("cancelled")));
    // A second cancel now reports the terminal state it hit.
    assert_eq!(
        client.cancel(task).unwrap(),
        CancelOutcome::AlreadyTerminal(TaskState::Cancelled)
    );
    agent.stop();
    cloud.shutdown();
}

#[test]
fn cancel_running_task_globus_compute_engine() {
    cancel_running_task_on(
        "engine:\n  type: GlobusComputeEngine\n",
        "mid-htex@test.org",
    );
}

#[test]
fn cancel_running_task_thread_engine() {
    cancel_running_task_on(
        "engine:\n  type: ThreadEngine\n  workers: 2\n",
        "mid-thread@test.org",
    );
}

#[test]
fn executor_cancel_resolves_future() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("exec-cancel@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "offline-ep", false, AuthPolicy::open(), None)
        .unwrap();
    // No agent: tasks buffer forever unless cancelled.
    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();
    let f = PyFunction::new("def f():\n    return 1\n");
    let fut = ex.submit(&f, vec![], Value::None).unwrap();
    // Give the batcher a moment to flush, then cancel.
    std::thread::sleep(Duration::from_millis(60));
    assert!(ex.cancel(&fut).unwrap());
    let err = fut.result_timeout(Duration::from_secs(2)).unwrap_err();
    assert!(matches!(err, GcxError::Cancelled(id) if id == fut.task_id()));
    assert_eq!(ex.inflight(), 0);
    // Cancelling an already-resolved future reports false.
    assert!(!ex.cancel(&fut).unwrap());
    ex.close();
    cloud.shutdown();
}

#[test]
fn others_cannot_cancel_your_tasks() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, alice) = cloud.auth().login("alice@t.org").unwrap();
    let (_, mallory) = cloud.auth().login("mallory@t.org").unwrap();
    let alice_client = Client::new(cloud.clone(), alice.clone());
    let mallory_client = Client::new(cloud.clone(), mallory);
    let reg = cloud
        .register_endpoint(&alice, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let fid = alice_client
        .register_function(&PyFunction::new("def f():\n    return 1\n"))
        .unwrap();
    let task = alice_client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    let err = mallory_client.cancel(task).unwrap_err();
    assert!(matches!(err, GcxError::Forbidden(_)));
    cloud.shutdown();
}

//! Integration tests for best-effort task cancellation.

use std::time::Duration;

use gcx::auth::AuthPolicy;
use gcx::cloud::WebService;
use gcx::core::clock::SystemClock;
use gcx::core::error::GcxError;
use gcx::core::task::TaskState;
use gcx::core::value::Value;
use gcx::endpoint::{AgentEnv, EndpointAgent, EndpointConfig};
use gcx::sdk::{Client, Executor, PyFunction};

#[test]
fn cancel_buffered_task_never_executes() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("cancel@test.org").unwrap();
    let client = Client::new(cloud.clone(), token.clone());
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    // A side-effecting function: if it ever ran, the counter would move.
    let fid = client
        .register_function(&PyFunction::new("def f():\n    return 'executed'\n"))
        .unwrap();

    // Submit while the endpoint is offline, then cancel.
    let task = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    client.cancel(task).unwrap();
    let (state, result) = client.task_status(task).unwrap();
    assert_eq!(state, TaskState::Cancelled);
    assert!(matches!(result, Some(gcx::core::task::TaskResult::Err(m)) if m.contains("cancelled")));

    // Now the agent comes online: it must skip the cancelled task.
    let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();

    // Submit a sentinel task and wait for it: once it completes we know the
    // agent has drained past the cancelled task.
    let sentinel = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    client
        .get_result(sentinel, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    let (state, _) = client.task_status(task).unwrap();
    assert_eq!(
        state,
        TaskState::Cancelled,
        "cancelled task stays cancelled"
    );
    // The engine executed exactly one task (the sentinel): the cancelled one
    // was acked without dispatch, visible via the dispatch metric being the
    // cloud-side count of completed results.
    assert_eq!(cloud.metrics().counter("cloud.results_processed").get(), 1);

    agent.stop();
    cloud.shutdown();
}

#[test]
fn cancel_completed_task_errors() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("late@test.org").unwrap();
    let client = Client::new(cloud.clone(), token.clone());
    let reg = cloud
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let config = EndpointConfig::from_yaml("engine:\n  type: GlobusComputeEngine\n").unwrap();
    let agent = EndpointAgent::start(
        &cloud,
        reg.endpoint_id,
        &reg.queue_credential,
        &config,
        AgentEnv::local(SystemClock::shared()),
    )
    .unwrap();
    let fid = client
        .register_function(&PyFunction::new("def f():\n    return 1\n"))
        .unwrap();
    let task = client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    client
        .get_result(task, Duration::from_millis(5), Duration::from_secs(10))
        .unwrap();
    let err = client.cancel(task).unwrap_err();
    assert!(err.to_string().contains("already"), "{err}");
    agent.stop();
    cloud.shutdown();
}

#[test]
fn executor_cancel_resolves_future() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, token) = cloud.auth().login("exec-cancel@test.org").unwrap();
    let reg = cloud
        .register_endpoint(&token, "offline-ep", false, AuthPolicy::open(), None)
        .unwrap();
    // No agent: tasks buffer forever unless cancelled.
    let ex = Executor::new(cloud.clone(), token, reg.endpoint_id).unwrap();
    let f = PyFunction::new("def f():\n    return 1\n");
    let fut = ex.submit(&f, vec![], Value::None).unwrap();
    // Give the batcher a moment to flush, then cancel.
    std::thread::sleep(Duration::from_millis(60));
    assert!(ex.cancel(&fut).unwrap());
    let err = fut.result_timeout(Duration::from_secs(2)).unwrap_err();
    assert!(matches!(err, GcxError::Cancelled(id) if id == fut.task_id()));
    assert_eq!(ex.inflight(), 0);
    // Cancelling an already-resolved future reports false.
    assert!(!ex.cancel(&fut).unwrap());
    ex.close();
    cloud.shutdown();
}

#[test]
fn others_cannot_cancel_your_tasks() {
    let cloud = WebService::with_defaults(SystemClock::shared());
    let (_, alice) = cloud.auth().login("alice@t.org").unwrap();
    let (_, mallory) = cloud.auth().login("mallory@t.org").unwrap();
    let alice_client = Client::new(cloud.clone(), alice.clone());
    let mallory_client = Client::new(cloud.clone(), mallory);
    let reg = cloud
        .register_endpoint(&alice, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let fid = alice_client
        .register_function(&PyFunction::new("def f():\n    return 1\n"))
        .unwrap();
    let task = alice_client
        .run(fid, reg.endpoint_id, vec![], Value::None)
        .unwrap();
    let err = mallory_client.cancel(task).unwrap_err();
    assert!(matches!(err, GcxError::Forbidden(_)));
    cloud.shutdown();
}

//! Federation chaos tests: replica-level faults injected into a
//! multi-replica cloud while a real SDK workload is in flight.
//!
//! The acceptance bar mirrors the single-replica chaos suite, lifted to the
//! federation: every submitted task reaches a terminal state, the SDK
//! observes each result exactly once (duplicates only ever appear in
//! `cloud.duplicate_results_dropped`), and the ownership handover is
//! visible as linked spans inside the task's one trace.
//!
//! All timing runs on a virtual clock: the failure point, the liveness
//! sweep, and the partition window are deterministic. Two environment
//! variables parameterise the suite for CI's seed matrix:
//!
//! - `GCX_CHAOS_SEED` — decimal or `0x`-hex seed for the fault plan;
//! - `GCX_CHAOS_REPLICA_FAULT` — `replica_kill` (default) or
//!   `replica_partition`, selecting how the owner replica fails.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcx::auth::{AuthPolicy, AuthService};
use gcx::cloud::{CloudConfig, Federation, FederationConfig};
use gcx::core::clock::{SharedClock, VirtualClock};
use gcx::core::metrics::MetricsRegistry;
use gcx::core::retry::RetryPolicy;
use gcx::core::task::{TaskResult, TaskSpec};
use gcx::core::value::Value;
use gcx::mq::{Broker, FaultPlan, LinkProfile, ReplicaFaultRule};
use gcx::sdk::{Client, Executor, ExecutorConfig, PyFunction, TaskFuture};

fn chaos_seed() -> u64 {
    std::env::var("GCX_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_string();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(0x0FED_5EED)
}

/// Which replica-level fault the headline scenario injects.
fn fault_is_partition() -> bool {
    matches!(
        std::env::var("GCX_CHAOS_REPLICA_FAULT").as_deref(),
        Ok("replica_partition")
    )
}

fn virtual_federation(
    replicas: usize,
    heartbeat_timeout_ms: u64,
) -> (Arc<VirtualClock>, Federation) {
    let vclock = VirtualClock::new();
    let clock: SharedClock = vclock.clone();
    let broker = Broker::with_profile(
        MetricsRegistry::new(),
        clock.clone(),
        LinkProfile::instant(),
    );
    let fed = Federation::with_parts(
        FederationConfig {
            replicas,
            heartbeat_timeout_ms,
            ..FederationConfig::default()
        },
        CloudConfig::default(),
        AuthService::new(clock.clone()),
        broker,
        clock,
    );
    (vclock, fed)
}

fn observe(futures: &[TaskFuture]) -> Arc<AtomicUsize> {
    let resolutions = Arc::new(AtomicUsize::new(0));
    for f in futures {
        let r = Arc::clone(&resolutions);
        f.on_done(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    }
    resolutions
}

fn assert_observed_exactly(resolutions: &AtomicUsize, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while resolutions.load(Ordering::SeqCst) < expect && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        resolutions.load(Ordering::SeqCst),
        expect,
        "the SDK must observe each result exactly once"
    );
}

fn answer(spec: &TaskSpec) -> TaskResult {
    let (args, _) = spec.decode_args().unwrap();
    TaskResult::ok(Value::Int(args[0].as_int().unwrap() * 2))
}

/// The headline scenario (the tentpole's acceptance test): a 2-replica
/// federation serves a 24-task workload through a federated executor; the
/// replica owning an in-flight task is killed (or partitioned to death —
/// `GCX_CHAOS_REPLICA_FAULT`) mid-workload. The liveness sweep removes it
/// from the ring, the survivor replays its durable task log (adopting the
/// orphans and republishing the open ones — a deliberate duplicate-delivery
/// window), and queued result envelopes re-route to the adopter. Everything
/// completes with exactly-once result observation, and each adopted task's
/// trace links submit → handover → result.
#[test]
fn owner_replica_dies_mid_flight_tasks_hand_over_exactly_once() {
    const TASKS: usize = 24;
    let (vclock, fed) = virtual_federation(2, 1_000);
    let dir = fed.directory();
    let r0 = dir.get(0).unwrap();
    let r1 = dir.get(1).unwrap();
    let (_, token) = fed.auth().login("fed-chaos@test.org").unwrap();
    let reg = r0
        .register_endpoint(&token, "shared-ep", false, AuthPolicy::open(), None)
        .unwrap();
    // The endpoint session rides the shared broker: it outlives either
    // replica. Connect through the replica that will survive.
    let session = r1
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();

    let ex = Executor::federated(
        dir.clone(),
        token.clone(),
        reg.endpoint_id,
        ExecutorConfig {
            retry: RetryPolicy::fixed(4, 5),
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let double = PyFunction::new("def f(x):\n    return x * 2\n");
    let futures: Vec<TaskFuture> = (0..TASKS)
        .map(|i| {
            ex.submit(&double, vec![Value::Int(i as i64)], Value::None)
                .unwrap()
        })
        .collect();
    let resolutions = observe(&futures);

    // Pull every delivery (forwarded submits ship from both replicas'
    // rpc loops, which run on wall time).
    let mut pulled = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(15);
    while pulled.len() < TASKS {
        assert!(
            Instant::now() < deadline,
            "endpoint saw only {} of {TASKS} tasks",
            pulled.len()
        );
        if let Some(d) = session.next_task(Duration::from_millis(20)).unwrap() {
            pulled.push(d);
        }
    }

    // Finish the first third cleanly; the rest are in flight when the
    // fault hits.
    for (spec, tag) in &pulled[..TASKS / 3] {
        session.publish_result(spec.task_id, &answer(spec)).unwrap();
        session.ack_task(*tag).unwrap();
    }
    // Wait until the finished results are actually processed, so the kill
    // cannot race the result pipeline for them.
    let processed = fed.metrics().counter("cloud.results_processed");
    let deadline = Instant::now() + Duration::from_secs(10);
    while (processed.get() as usize) < TASKS / 3 {
        assert!(Instant::now() < deadline, "early results never processed");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The victim is, by construction, the owner of an unfinished in-flight
    // task.
    let mid_flight = pulled[TASKS / 3].0.task_id;
    let victim = fed.owner_of(mid_flight.uuid()).unwrap();
    let now = fed.metrics().tracer().now_ms();
    let plan = if fault_is_partition() {
        // A partition that outlives the heartbeat timeout: the victim is
        // declared dead while its process keeps running as a fenced,
        // stale ex-owner.
        FaultPlan::new(chaos_seed()).with_replica_rule(ReplicaFaultRule::partition(
            victim,
            now + 500,
            now + 60_000,
        ))
    } else {
        FaultPlan::new(chaos_seed()).with_replica_rule(ReplicaFaultRule::kill(victim, now + 500))
    };
    vclock.advance(600);
    assert_eq!(fed.apply_fault_actions(&plan), 1, "the fault must fire");

    // The heartbeat goes stale; the sweep removes the victim from the ring
    // and the survivor adopts its tasks from the durable log.
    vclock.advance(1_500);
    fed.heartbeat_all(); // survivors only: down/partitioned replicas are skipped
    assert_eq!(fed.check_replicas(), 1, "victim must be declared dead");
    assert!(fed.metrics().counter("fed.replicas_dead").get() >= 1);
    assert!(
        fed.metrics().counter("fed.tasks_adopted").get() >= 1,
        "the survivor must adopt the victim's open tasks"
    );

    // Serve everything still outstanding: the original deliveries plus any
    // republished duplicates from the handover replay. Publishing a result
    // twice is exactly the at-least-once behaviour the idempotent ingestion
    // must absorb.
    for (spec, tag) in &pulled[TASKS / 3..] {
        session.publish_result(spec.task_id, &answer(spec)).unwrap();
        session.ack_task(*tag).unwrap();
    }
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < drain_deadline {
        match session.next_task(Duration::from_millis(10)) {
            Ok(Some((spec, tag))) => {
                session
                    .publish_result(spec.task_id, &answer(&spec))
                    .unwrap();
                session.ack_task(tag).unwrap();
            }
            Ok(None) => {
                if resolutions.load(Ordering::SeqCst) >= TASKS {
                    break;
                }
            }
            Err(_) => break,
        }
    }

    for (i, f) in futures.iter().enumerate() {
        assert_eq!(
            f.result_timeout(Duration::from_secs(30)).unwrap(),
            Value::Int(i as i64 * 2),
            "task {i} must complete despite the {} of its owner",
            if fault_is_partition() {
                "partition"
            } else {
                "kill"
            },
        );
    }
    assert_eq!(ex.inflight(), 0);
    assert_observed_exactly(&resolutions, TASKS);

    // Exactly-once at the cloud: one processed completion per task; any
    // extra copies from the republish window were dropped as duplicates.
    assert_eq!(
        fed.metrics().counter("cloud.results_processed").get(),
        TASKS as u64,
        "each task completes exactly once"
    );
    assert_eq!(
        fed.metrics().counter("fed.orphan_results_dropped").get(),
        0,
        "no result may be lost in the handover window"
    );

    // The handover is visible inside the task traces: at least one trace
    // carries a `handover` span, and every such trace links submit →
    // handover → result with no orphaned spans and exactly one `result`
    // span (exactly-once, trace edition).
    let traces = fed.tracer().traces();
    let handed_over: Vec<_> = traces
        .iter()
        .filter(|t| t.spans_named("handover").count() >= 1)
        .collect();
    assert!(
        !handed_over.is_empty(),
        "the handover must be visible as spans in the adopted tasks' traces"
    );
    for t in &handed_over {
        assert!(
            t.spans_named("submit").count() >= 1,
            "the adopted task's trace must keep its submit leg"
        );
        assert_eq!(
            t.spans_named("result").count(),
            1,
            "exactly one result span per adopted task"
        );
        assert!(
            t.orphan_spans().is_empty(),
            "handover spans must link into the task's trace, not dangle"
        );
    }
    // Every completed task shows exactly one result span.
    assert_eq!(
        traces
            .iter()
            .map(|t| t.spans_named("result").count())
            .sum::<usize>(),
        TASKS,
        "one result span per task across all traces"
    );

    ex.close();
    drop(session);
    fed.shutdown();
}

/// A killed replica restarts: the fresh incarnation (same id, shared
/// metadata stores) rejoins the ring with an epoch bump and takes back its
/// ownership ranges. Stale SDK handles to the dead incarnation answer
/// `ReplicaUnavailable` — never silently accept work into an orphaned task
/// store — so the polling client rotates, and a post-restart workload
/// spreads across both replicas again and completes exactly once.
#[test]
fn killed_replica_restarts_rejoins_and_serves_again() {
    const BATCH: usize = 12;
    let (vclock, fed) = virtual_federation(2, 1_000);
    let dir = fed.directory();
    let r0 = dir.get(0).unwrap();
    let r1 = dir.get(1).unwrap();
    let (_, token) = fed.auth().login("fed-restart@test.org").unwrap();
    let reg = r0
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    let session = r1
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let client = Client::federated(dir.clone(), token.clone()).unwrap();
    let fid = client
        .register_function(&PyFunction::new("def f(x):\n    return x * 2\n"))
        .unwrap();

    let serve = |n: usize| {
        let mut served = 0;
        let deadline = Instant::now() + Duration::from_secs(15);
        while served < n {
            assert!(Instant::now() < deadline, "served only {served} of {n}");
            if let Some((spec, tag)) = session.next_task(Duration::from_millis(20)).unwrap() {
                session
                    .publish_result(spec.task_id, &answer(&spec))
                    .unwrap();
                session.ack_task(tag).unwrap();
                served += 1;
            }
        }
    };

    // Round 1: a clean batch across both replicas.
    let ids: Vec<_> = (0..BATCH)
        .map(|i| {
            client
                .run(
                    fid,
                    reg.endpoint_id,
                    vec![Value::Int(i as i64)],
                    Value::None,
                )
                .unwrap()
        })
        .collect();
    serve(BATCH);
    for (i, r) in client
        .get_batch_results(&ids, Duration::from_millis(5), Duration::from_secs(15))
        .unwrap()
        .into_iter()
        .enumerate()
    {
        assert_eq!(r.unwrap(), Value::Int(i as i64 * 2));
    }

    // Kill replica 0, let the sweep hand its (empty) ranges over, then
    // restart it via the scripted fault plan.
    let now = fed.metrics().tracer().now_ms();
    let plan = FaultPlan::new(chaos_seed())
        .with_replica_rule(ReplicaFaultRule::kill(0, now + 500))
        .with_replica_rule(ReplicaFaultRule::restart(0, now + 5_000));
    vclock.advance(600);
    assert_eq!(fed.apply_fault_actions(&plan), 1);
    vclock.advance(1_500);
    fed.heartbeat_all();
    assert_eq!(fed.check_replicas(), 1);
    assert_eq!(fed.live_replicas(), vec![1]);

    // A stale handle to the dead incarnation is typed-unavailable, and the
    // federated client rotates around it.
    assert!(matches!(
        r0.task_status(&token, gcx::core::ids::TaskId::random()),
        Err(gcx::core::error::GcxError::ReplicaUnavailable(0))
    ));
    let mid = client
        .run(fid, reg.endpoint_id, vec![Value::Int(100)], Value::None)
        .unwrap();
    serve(1);
    assert_eq!(
        client
            .get_result(mid, Duration::from_millis(5), Duration::from_secs(15))
            .unwrap(),
        Value::Int(200)
    );

    vclock.advance(3_500);
    assert_eq!(fed.apply_fault_actions(&plan), 1, "restart must fire");
    fed.heartbeat_all();
    assert_eq!(fed.live_replicas(), vec![0, 1], "replica 0 must rejoin");
    assert_eq!(fed.metrics().counter("fed.replica_restarts").get(), 1);
    // The stale pre-restart handle STAYS unreachable: its task store
    // belongs to the dead incarnation.
    assert!(matches!(
        r0.task_status(&token, gcx::core::ids::TaskId::random()),
        Err(gcx::core::error::GcxError::ReplicaUnavailable(0))
    ));

    // Round 2: ownership is spread across both replicas again and the
    // whole batch completes through the restarted federation.
    let ids2: Vec<_> = (0..BATCH)
        .map(|i| {
            client
                .run(
                    fid,
                    reg.endpoint_id,
                    vec![Value::Int(i as i64)],
                    Value::None,
                )
                .unwrap()
        })
        .collect();
    let owners: std::collections::HashSet<u32> = ids2
        .iter()
        .map(|t| fed.owner_of(t.uuid()).unwrap())
        .collect();
    assert_eq!(owners.len(), 2, "post-restart tasks spread across the ring");
    serve(BATCH);
    for (i, r) in client
        .get_batch_results(&ids2, Duration::from_millis(5), Duration::from_secs(15))
        .unwrap()
        .into_iter()
        .enumerate()
    {
        assert_eq!(r.unwrap(), Value::Int(i as i64 * 2));
    }
    assert_eq!(
        fed.metrics().counter("cloud.results_processed").get(),
        (2 * BATCH + 1) as u64
    );
    assert_eq!(
        fed.metrics()
            .counter("cloud.duplicate_results_dropped")
            .get(),
        0,
        "no fault window here: nothing may be duplicated"
    );

    drop(session);
    fed.shutdown();
}

/// Throughput sanity under chaos is covered by the E12 bench; this test
/// pins the *routing* invariant it relies on: with N replicas every task
/// has exactly one owner at any epoch, and a non-owner consistently
/// redirects rather than serving a split-brain answer.
#[test]
fn non_owners_redirect_consistently_across_epochs() {
    let (vclock, fed) = virtual_federation(3, 1_000);
    let dir = fed.directory();
    let (_, token) = fed.auth().login("fed-routing@test.org").unwrap();
    let r0 = dir.get(0).unwrap();
    let reg = r0
        .register_endpoint(&token, "ep", false, AuthPolicy::open(), None)
        .unwrap();
    // Connect the endpoint session through a replica that survives the
    // upcoming kill of replica 2.
    let session = dir
        .get(1)
        .unwrap()
        .connect_endpoint(reg.endpoint_id, &reg.queue_credential)
        .unwrap();
    let client = Client::federated(dir.clone(), token.clone()).unwrap();
    let fid = client
        .register_function(&PyFunction::new("def f(x):\n    return x + 1\n"))
        .unwrap();

    let mut expected = HashMap::new();
    let mut ids = Vec::new();
    for i in 0..18i64 {
        let id = client
            .run(fid, reg.endpoint_id, vec![Value::Int(i)], Value::None)
            .unwrap();
        expected.insert(id, i + 1);
        ids.push(id);
    }
    // A non-owner accepts a submit and *forwards* it to the owner through
    // the broker rpc loop, so the record lands on the owner asynchronously.
    // Wait until every owner can see its task before pinning the routing.
    let settle = Instant::now() + Duration::from_secs(10);
    for id in &ids {
        let owner = dir.get(fed.owner_of(id.uuid()).unwrap()).unwrap();
        while owner.task_status(&token, *id).is_err() {
            assert!(
                Instant::now() < settle,
                "task {id:?} never reached its owner"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Exactly one replica answers for each task; the others redirect to it.
    let epoch_before = fed.epoch();
    for id in &ids {
        let owner = fed.owner_of(id.uuid()).unwrap();
        let mut owners_answering = 0;
        for r in dir.live() {
            match dir.get(r).unwrap().task_status(&token, *id) {
                Ok(_) => {
                    assert_eq!(r, owner, "only the ring owner may answer");
                    owners_answering += 1;
                }
                Err(gcx::core::error::GcxError::NotOwner { owner: o }) => {
                    assert_eq!(o, owner, "redirects must name the ring owner");
                }
                Err(e) => panic!("unexpected error from replica {r}: {e}"),
            }
        }
        assert_eq!(owners_answering, 1);
    }

    // Kill one replica: the epoch bumps and ownership stays single-headed
    // among the survivors.
    fed.kill(2);
    vclock.advance(1_500);
    fed.heartbeat_all();
    assert_eq!(fed.check_replicas(), 1);
    assert!(fed.epoch() > epoch_before, "handover must bump the epoch");
    for id in &ids {
        let owner = fed.owner_of(id.uuid()).unwrap();
        assert!(owner != 2, "a dead replica cannot own tasks");
        let mut owners_answering = 0;
        for r in dir.live() {
            match dir.get(r).unwrap().task_status(&token, *id) {
                Ok(_) => owners_answering += 1,
                Err(gcx::core::error::GcxError::NotOwner { owner: o }) => {
                    assert_eq!(o, owner);
                }
                Err(e) => panic!("unexpected error from replica {r}: {e}"),
            }
        }
        assert_eq!(owners_answering, 1, "exactly one owner per task per epoch");
    }

    // And the workload still completes exactly once.
    let mut served = 0;
    let deadline = Instant::now() + Duration::from_secs(15);
    while served < ids.len() {
        assert!(Instant::now() < deadline, "served only {served}");
        if let Some((spec, tag)) = session.next_task(Duration::from_millis(20)).unwrap() {
            let v = expected[&spec.task_id];
            session
                .publish_result(spec.task_id, &TaskResult::ok(Value::Int(v)))
                .unwrap();
            session.ack_task(tag).unwrap();
            served += 1;
        }
    }
    for id in &ids {
        assert_eq!(
            client
                .get_result(*id, Duration::from_millis(5), Duration::from_secs(15))
                .unwrap(),
            Value::Int(expected[id])
        );
    }
    assert_eq!(
        fed.metrics().counter("cloud.results_processed").get(),
        ids.len() as u64
    );

    drop(session);
    fed.shutdown();
}
